// Package txn implements the TABS Transaction Manager (paper §3.2.3).
//
// The Transaction Manager allocates globally unique transaction
// identifiers, tracks which data servers and which remote nodes become
// involved in each transaction (told by servers' first-operation messages
// and the Communication Manager's first-remote-message notifications), and
// implements the tree-structured variant of the two-phase commit protocol:
// each node acts as coordinator for the nodes that are its children in the
// spanning tree built from "who first invoked an operation on whom".
//
// Subtransactions need no extra machinery (§3.2.3): the same messages
// track them, they may abort without aborting their parent, they commit
// only when the top-level transaction commits, and a parent's outcome is
// applied to them at top-level commit or abort time.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tabs/internal/acp"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// Participant is the server-library interface the Transaction Manager
// drives at transaction termination. Locks are released here — "all
// unlocking is done automatically by the server library at commit or abort
// time" (§3.1.1).
type Participant interface {
	// CommitTrans finalizes the top-level transaction and every local
	// subtransaction belonging to it: release their locks, drop volatile
	// per-transaction state.
	CommitTrans(top types.TransID)
	// AbortTrans releases the locks of exactly the given (sub)transaction
	// after the Recovery Manager has undone its effects.
	AbortTrans(tid types.TransID)
}

// RecoveryManager is the slice of the Recovery Manager the Transaction
// Manager needs.
type RecoveryManager interface {
	LogCommit(tid types.TransID) error
	LogPrepare(tid types.TransID, p *wal.PrepareBody) error
	Abort(tid types.TransID) error
	HasLogged(tid types.TransID) bool
}

// CommManager is the slice of the Communication Manager the Transaction
// Manager needs: the spanning tree and datagram transmission (§2.1.2:
// "TABS has been careful to use datagrams for communication during
// transaction commit").
type CommManager interface {
	Node() types.NodeID
	Tree(tid types.TransID) (parent types.NodeID, hasParent bool, children []types.NodeID)
	ForgetTree(tid types.TransID)
	SendDatagram(peer types.NodeID, service string, tid types.TransID, payload []byte, charge float64) error
	RegisterService(service string, handler func(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error))
}

// Errors.
var (
	ErrUnknownTrans = errors.New("txn: unknown transaction")
	ErrNotActive    = errors.New("txn: transaction not active")
	ErrVoteTimeout  = errors.New("txn: participant vote not received")
	ErrAborted      = errors.New("txn: transaction aborted")
	// ErrInDoubt is returned by End when a replicated commit decision could
	// not be confirmed here but may have been established by a competing
	// recovery proposer: the transaction is neither committed nor aborted
	// from the caller's point of view. It resolves asynchronously (the
	// in-doubt resolver and orphan sweeper consult the acceptor quorum);
	// poll Status for the terminal outcome.
	ErrInDoubt = errors.New("txn: commit outcome in doubt")
)

// Service is the Communication Manager service name for commit datagrams.
const Service = "txn"

type state int

const (
	stActive state = iota
	stPreparing
	stPrepared
	stCommitted
	stAborted
)

// localTrans is one node's view of one top-level transaction.
type localTrans struct {
	top     types.TransID
	state   state
	servers map[types.ServerID]Participant
	// subs maps local subtransactions to their status: active,
	// committed (pending root), or aborted (already undone).
	subs      map[types.TransID]types.Status
	subParent map[types.TransID]types.TransID
	remote    bool
	prep      *wal.PrepareBody // recorded at participant prepare
	lastTouch time.Time        // last sign of life, for orphan detection
	// undone is set once an abort's undo phase has fully completed;
	// aborting marks an undo in flight. state == stAborted with undone
	// false means a previous abort failed partway (log or disk error) and
	// the orphan sweeper must retry it, or locks stay stranded.
	undone   bool
	aborting bool
	// resolvedAbort marks that an Aborted outcome for a prepared
	// transaction came from an authoritative source (the coordinator's
	// phase-2 instruction or the acceptor quorum). abortTree refuses to
	// abort a transaction prepared under a replicated protocol without it:
	// presumed abort is unsound once the decision lives at the acceptors.
	resolvedAbort bool
}

// Manager is one node's Transaction Manager.
type Manager struct {
	node types.NodeID
	rm   RecoveryManager
	cm   CommManager
	rec  *stats.Recorder
	tr   *trace.Tracer

	mu    sync.Mutex
	seq   uint64
	trans map[types.TransID]*localTrans // keyed by top-level TID
	// protocol decides how a top-level commit becomes durable (acp
	// package): twopc — the default, the paper's coordinator-forces-the-
	// commit-record — or a replicated protocol installed with SetProtocol.
	protocol acp.Protocol
	twopc    *acp.TwoPhase
	// decideHook, when set, is called at the commit decision point with
	// phase "decide" (before the decision is attempted) and "decided"
	// (after the outcome is durably established). Fault-injection harnesses
	// use it to park the coordinator at the worst possible instant; it runs
	// without m.mu held and may block forever.
	decideHook func(types.TransID, string)
	// outcomes remembers terminal results for status queries and
	// TransactionIsAborted; restart repopulates it from the log.
	outcomes map[types.TransID]types.Status
	waiters  map[waitKey]chan dgMsg

	// voteTimeout bounds one wait for a child's vote or ack; retries is
	// the number of datagram (re)transmissions before giving up;
	// orphanTimeout bounds how long a remote-rooted transaction may stay
	// active with no sign of life before this node asks its coordinator
	// for the outcome. Tune with Configure.
	voteTimeout   time.Duration
	retries       int
	orphanTimeout time.Duration

	stopSweep chan struct{}
}

type waitKey struct {
	tid  types.TransID
	from types.NodeID
	kind uint8
}

// New returns a Transaction Manager and registers its datagram service
// with the Communication Manager (cm may be nil for single-node use).
func New(node types.NodeID, rm RecoveryManager, cm CommManager, rec *stats.Recorder) *Manager {
	m := &Manager{
		node:          node,
		rm:            rm,
		cm:            cm,
		rec:           rec,
		trans:         make(map[types.TransID]*localTrans),
		outcomes:      make(map[types.TransID]types.Status),
		waiters:       make(map[waitKey]chan dgMsg),
		voteTimeout:   time.Second,
		retries:       4,
		orphanTimeout: 30 * time.Second,
		stopSweep:     make(chan struct{}),
	}
	// The default commit protocol is the paper's two-phase commit, adapted
	// to the acp.Protocol interface: the decision is the coordinator's
	// forced commit record, and in-doubt resolution asks the parent named
	// in the prepare record (staying in doubt — the 2PC blocking window —
	// when it cannot be reached).
	m.twopc = acp.NewTwoPhase(
		func(tid types.TransID) error { return m.rm.LogCommit(tid) },
		func(tid types.TransID, prep *wal.PrepareBody) types.Status {
			if prep == nil || prep.Parent == "" || m.cm == nil {
				return types.StatusPrepared
			}
			st := m.queryStatus(tid.TopLevel(), prep.Parent)
			if st == types.StatusUnknown {
				return types.StatusPrepared
			}
			return st
		},
	)
	m.protocol = m.twopc
	if cm != nil {
		cm.RegisterService(Service, m.handleDatagram)
		go m.orphanSweeper()
	}
	return m
}

// SetProtocol installs the atomic-commit protocol used for top-level
// commits (nil restores the built-in two-phase commit). Install before
// transactions start; transactions prepared under one protocol resolve by
// the acceptor set recorded in their prepare records, not by the protocol
// installed at resolution time.
func (m *Manager) SetProtocol(p acp.Protocol) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p == nil {
		m.protocol = m.twopc
		return
	}
	m.protocol = p
}

// SetDecideHook installs a hook called at the commit decision point (see
// the decideHook field). Harness use only; nil clears it.
func (m *Manager) SetDecideHook(h func(types.TransID, string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decideHook = h
}

// getProtocol snapshots the installed protocol under the lock.
func (m *Manager) getProtocol() acp.Protocol {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.protocol
}

// fireHook invokes the decide hook, if any, outside m.mu.
func (m *Manager) fireHook(tid types.TransID, phase string) {
	m.mu.Lock()
	h := m.decideHook
	m.mu.Unlock()
	if h != nil {
		h(tid, phase)
	}
}

// AttachTracer points the manager's commit-protocol spans and counters at
// tr. Call before transactions start; a nil tracer disables them.
func (m *Manager) AttachTracer(tr *trace.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tr = tr
}

// touch records a sign of life for the transaction. Caller holds m.mu.
func (lt *localTrans) touch() { lt.lastTouch = time.Now() }

// Configure tunes the commit-protocol timing: vote is the per-round wait
// for a child's reply, retries the number of datagram (re)transmissions,
// and orphan the silence threshold after which a remote-rooted active
// transaction is resolved with its coordinator. Zero values leave the
// current setting unchanged. Safe to call at any time.
func (m *Manager) Configure(vote time.Duration, retries int, orphan time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if vote > 0 {
		m.voteTimeout = vote
	}
	if retries > 0 {
		m.retries = retries
	}
	if orphan > 0 {
		m.orphanTimeout = orphan
	}
}

// timing snapshots the tuning knobs under the lock.
func (m *Manager) timing() (vote time.Duration, retries int, orphan time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.voteTimeout, m.retries, m.orphanTimeout
}

// orphanSweeper periodically looks for remote-rooted transactions that
// have been silent past the orphan time-out and resolves them with their
// coordinators; a coordinator that forgot them (it crashed before
// committing) answers presumed-abort and the stranded locks come free.
func (m *Manager) orphanSweeper() {
	for {
		_, _, orphan := m.timing()
		interval := orphan / 3
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		select {
		case <-m.stopSweep:
			return
		case <-time.After(interval):
		}
		m.sweepOrphans()
	}
}

// Sweep candidate classes.
const (
	candActive     = iota // remote-rooted, active, silent: orphan query
	candPrepared          // prepared in doubt: re-resolve with coordinator
	candAbortRetry        // abort failed mid-undo: retry the undo
)

// sweepOrphans runs one orphan-detection pass. Beyond the paper's orphan
// query for silent remote-rooted ACTIVE transactions, it re-resolves
// PREPARED transactions whose phase-2 instruction never arrived (lost to a
// partition or a coordinator crash — without this, a participant that had
// used up its one resolveWhenStuck query stayed in doubt forever, holding
// its locks past any partition heal) and retries aborts whose undo phase
// failed partway (without this, a transient log/disk error during undo
// stranded the transaction's locks permanently).
func (m *Manager) sweepOrphans() {
	_, _, orphan := m.timing()
	m.mu.Lock()
	cutoff := time.Now().Add(-orphan)
	type cand struct {
		lt     *localTrans
		parent types.NodeID
		class  int
	}
	var cands []cand
	for top, lt := range m.trans {
		if lt.state == stAborted {
			// Stuck aborts are retried regardless of where the
			// transaction was rooted.
			if !lt.undone && !lt.aborting {
				cands = append(cands, cand{lt: lt, class: candAbortRetry})
			}
			continue
		}
		if !lt.remote && lt.state != stPrepared {
			// Locally-rooted transactions resolve synchronously — except a
			// root left prepared in doubt (a replicated commit decision
			// that could not be confirmed), which is swept like any other
			// in-doubt participant.
			continue
		}
		if lt.lastTouch.IsZero() || lt.lastTouch.After(cutoff) {
			continue
		}
		parent := top.Node // the transaction's home node coordinates
		if lt.prep != nil && lt.prep.Parent != "" {
			parent = lt.prep.Parent // prepared: ask who we voted to
		} else if m.cm != nil {
			if p, has, _ := m.cm.Tree(top); has {
				parent = p
			}
		}
		switch lt.state {
		case stActive:
			cands = append(cands, cand{lt: lt, parent: parent, class: candActive})
		case stPrepared:
			cands = append(cands, cand{lt: lt, parent: parent, class: candPrepared})
		}
	}
	m.mu.Unlock()
	for _, c := range cands {
		if c.class == candAbortRetry {
			m.tr.Count("txn.abort.retries", 1)
			_ = m.abortTree(c.lt, false)
			continue
		}
		var st types.Status
		if c.class == candPrepared {
			st = m.resolveOutcome(c.lt, c.parent)
		} else {
			st = m.queryStatus(c.lt.top, c.parent)
		}
		if c.class == candPrepared {
			switch st {
			case types.StatusCommitted:
				m.participantCommit(c.parent, c.lt.top)
			case types.StatusAborted:
				m.mu.Lock()
				c.lt.resolvedAbort = true
				m.mu.Unlock()
				_ = m.abortTree(c.lt, false)
			default:
				// Coordinator unreachable or still deciding: a prepared
				// participant must stay in doubt (the 2PC blocking
				// window); ask again next sweep.
				m.mu.Lock()
				c.lt.touch()
				m.mu.Unlock()
			}
			continue
		}
		switch st {
		case types.StatusAborted:
			_ = m.abortTree(c.lt, false)
		case types.StatusUnknown:
			// No coordinator answered at all. The transaction is still
			// ACTIVE here — it never prepared — so this node may abort
			// its portion unilaterally: 2PC cannot have committed without
			// asking us to prepare first.
			m.mu.Lock()
			stillActive := c.lt.state == stActive
			m.mu.Unlock()
			if stillActive {
				_ = m.abortTree(c.lt, false)
			}
		default:
			// The coordinator is alive and the transaction is genuinely
			// in progress (or, impossibly for a writer, committed):
			// refresh the clock and look again later.
			m.mu.Lock()
			c.lt.touch()
			m.mu.Unlock()
		}
	}
}

// recordMsgs accounts n small intra-node messages (application/server <->
// Transaction Manager traffic).
func (m *Manager) recordMsgs(n int) {
	if m.rec != nil {
		for i := 0; i < n; i++ {
			m.rec.Record(simclock.SmallMsg)
		}
	}
}

// Begin creates a transaction (BeginTransaction, Table 3-2): a new
// top-level transaction when parent is the null TransID, otherwise a
// subtransaction of parent. The exchange with the Transaction Manager
// costs a request and a reply message.
func (m *Manager) Begin(parent types.TransID) (types.TransID, error) {
	m.recordMsgs(2)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	if parent.IsNil() {
		tid := types.TransID{Node: m.node, Seq: m.seq, RootNode: m.node, RootSeq: m.seq}
		lt := &localTrans{
			top:       tid,
			servers:   make(map[types.ServerID]Participant),
			subs:      make(map[types.TransID]types.Status),
			subParent: make(map[types.TransID]types.TransID),
		}
		lt.touch()
		m.trans[tid] = lt
		m.tr.Begin("txn", "begin").SetTID(tid).End()
		return tid, nil
	}
	top := parent.TopLevel()
	lt := m.trans[top]
	if lt == nil {
		// First local activity for a remote-rooted transaction.
		lt = &localTrans{
			top:       top,
			servers:   make(map[types.ServerID]Participant),
			subs:      make(map[types.TransID]types.Status),
			subParent: make(map[types.TransID]types.TransID),
			remote:    true,
		}
		m.trans[top] = lt
	}
	if lt.state != stActive {
		return types.NilTransID, fmt.Errorf("%w: %v", ErrNotActive, parent)
	}
	if !parent.IsTopLevel() {
		if st, ok := lt.subs[parent]; !ok || st != types.StatusActive {
			return types.NilTransID, fmt.Errorf("%w: parent %v", ErrNotActive, parent)
		}
	}
	sub := types.TransID{Node: m.node, Seq: m.seq, RootNode: top.RootNode, RootSeq: top.RootSeq}
	lt.subs[sub] = types.StatusActive
	lt.subParent[sub] = parent
	lt.touch()
	m.tr.Begin("txn", "begin").SetTID(sub).Annotate("sub=true").End()
	return sub, nil
}

// JoinServer records that server performed its first operation on behalf
// of tid ("doing so enables the Transaction Manager to know which servers
// it must inform when the transaction is being terminated", §3.2.3).
func (m *Manager) JoinServer(tid types.TransID, server types.ServerID, p Participant) {
	m.recordMsgs(1)
	top := tid.TopLevel()
	m.mu.Lock()
	defer m.mu.Unlock()
	lt := m.trans[top]
	if lt == nil {
		lt = &localTrans{
			top:       top,
			servers:   make(map[types.ServerID]Participant),
			subs:      make(map[types.TransID]types.Status),
			subParent: make(map[types.TransID]types.TransID),
			remote:    top.Node != m.node,
		}
		m.trans[top] = lt
	}
	if !tid.IsTopLevel() {
		if _, ok := lt.subs[tid]; !ok {
			lt.subs[tid] = types.StatusActive
			lt.subParent[tid] = top
		}
	}
	lt.servers[server] = p
	lt.touch()
}

// NoteRemote implements comm.TransactionNoter: remote sites now have
// servers active on behalf of tid.
func (m *Manager) NoteRemote(tid types.TransID) {
	top := tid.TopLevel()
	m.mu.Lock()
	defer m.mu.Unlock()
	lt := m.trans[top]
	if lt == nil {
		lt = &localTrans{
			top:       top,
			servers:   make(map[types.ServerID]Participant),
			subs:      make(map[types.TransID]types.Status),
			subParent: make(map[types.TransID]types.TransID),
			remote:    top.Node != m.node,
		}
		m.trans[top] = lt
	}
	lt.remote = true
	lt.touch()
}

// RestorePrepared implements recovery.PreparedRestorer: crash restart hands
// back every transaction whose prepare record survives in the log with no
// outcome. The Transaction Manager rebuilds the volatile state it held
// before the crash — a prepared, remote-rooted localTrans — so the orphan
// sweeper resumes resolving it with the coordinator recorded in the prepare
// body, and a retransmitted phase-2 commit finds a transaction to apply.
// Without this, a participant that crashed after voting forgot it was
// prepared: participantCommit's "no state" path acked commits it never
// applied, and the in-doubt transaction's locks and effects were stranded.
func (m *Manager) RestorePrepared(tid types.TransID, prep *wal.PrepareBody) {
	top := tid.TopLevel()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.trans[top] != nil {
		return
	}
	lt := &localTrans{
		top:       top,
		state:     stPrepared,
		servers:   make(map[types.ServerID]Participant),
		subs:      make(map[types.TransID]types.Status),
		subParent: make(map[types.TransID]types.TransID),
		remote:    true,
		prep:      prep,
	}
	lt.touch()
	m.trans[top] = lt
	m.tr.Count("txn.restored_prepared", 1)
}

// LiveTransactions reports how many transactions this node still holds
// volatile state for — in-flight, prepared in doubt, or mid-abort. Torture
// harnesses use it as the quiescence check: after every failure is healed,
// the count must drain to zero on every node.
func (m *Manager) LiveTransactions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.trans)
}

// InDoubt lists the top-level transactions this node holds in the
// prepared state — voted (or, for a root under a replicated protocol,
// proposed) but without a learned outcome. Diagnostic surface for tabsctl
// and the torture harnesses.
func (m *Manager) InDoubt() []types.TransID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []types.TransID
	for top, lt := range m.trans {
		if lt.state == stPrepared {
			out = append(out, top)
		}
	}
	return out
}

// Status reports what this node knows about tid's outcome.
func (m *Manager) Status(tid types.TransID) types.Status {
	top := tid.TopLevel()
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.outcomes[tid]; ok {
		return st
	}
	lt := m.trans[top]
	if lt == nil {
		return types.StatusUnknown
	}
	if !tid.IsTopLevel() {
		if st, ok := lt.subs[tid]; ok {
			if st == types.StatusAborted {
				return types.StatusAborted
			}
			// Committed-pending subtransactions are still provisional.
			return types.StatusActive
		}
		return types.StatusUnknown
	}
	switch lt.state {
	case stCommitted:
		return types.StatusCommitted
	case stAborted:
		return types.StatusAborted
	case stPrepared, stPreparing:
		return types.StatusPrepared
	default:
		return types.StatusActive
	}
}

// IsAborted reports whether tid (or its top-level ancestor) is known to
// have aborted; the application library surfaces this as the
// TransactionIsAborted exception (Table 3-2).
func (m *Manager) IsAborted(tid types.TransID) bool {
	st := m.Status(tid)
	if st == types.StatusAborted {
		return true
	}
	return m.Status(tid.TopLevel()) == types.StatusAborted
}

// lookup returns the localTrans for tid's top-level transaction.
func (m *Manager) lookup(tid types.TransID) (*localTrans, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lt := m.trans[tid.TopLevel()]
	if lt == nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownTrans, tid)
	}
	return lt, nil
}

// End commits tid (EndTransaction, Table 3-2). For a subtransaction this
// records a provisional commit — its effects and locks are retained until
// the top-level transaction resolves. For a top-level transaction it runs
// the commit protocol and returns whether the transaction committed.
func (m *Manager) End(tid types.TransID) (bool, error) {
	m.recordMsgs(2)
	lt, err := m.lookup(tid)
	if err != nil {
		return false, err
	}
	if !tid.IsTopLevel() {
		m.mu.Lock()
		defer m.mu.Unlock()
		st, ok := lt.subs[tid]
		if !ok {
			return false, fmt.Errorf("%w: %v", ErrUnknownTrans, tid)
		}
		if st != types.StatusActive {
			return false, fmt.Errorf("%w: %v is %v", ErrNotActive, tid, st)
		}
		// Provisionally committed: resolved at top-level termination
		// ("a subtransaction is not committed until its top-level parent
		// transaction commits", §2.1.3).
		lt.subs[tid] = types.StatusCommitted
		return true, nil
	}
	if tid.Node != m.node {
		return false, fmt.Errorf("txn: End of %v must run on its home node %s", tid, tid.Node)
	}
	return m.commitTree(lt)
}

// Abort aborts tid (AbortTransaction, Table 3-2). Aborting a
// subtransaction undoes and releases only that subtransaction (and its
// descendants); the parent continues. Aborting a top-level transaction
// tears down the whole tree.
func (m *Manager) Abort(tid types.TransID) error {
	m.recordMsgs(2)
	lt, err := m.lookup(tid)
	if err != nil {
		return err
	}
	if !tid.IsTopLevel() {
		return m.abortSub(lt, tid)
	}
	return m.abortTree(lt, true)
}

// abortSub aborts one subtransaction and every active descendant of it.
func (m *Manager) abortSub(lt *localTrans, tid types.TransID) error {
	m.mu.Lock()
	if st, ok := lt.subs[tid]; !ok || st != types.StatusActive {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNotActive, tid)
	}
	// Collect tid and its descendants, deepest first.
	doomed := []types.TransID{tid}
	for i := 0; i < len(doomed); i++ {
		for sub, parent := range lt.subParent {
			if parent == doomed[i] && lt.subs[sub] == types.StatusActive {
				doomed = append(doomed, sub)
			}
		}
	}
	for _, d := range doomed {
		lt.subs[d] = types.StatusAborted
	}
	servers := participants(lt)
	m.mu.Unlock()

	for i := len(doomed) - 1; i >= 0; i-- {
		if err := m.rm.Abort(doomed[i]); err != nil {
			return err
		}
		for _, p := range servers {
			m.recordMsgs(1)
			p.AbortTrans(doomed[i])
		}
	}
	return nil
}

func participants(lt *localTrans) []Participant {
	out := make([]Participant, 0, len(lt.servers))
	for _, p := range lt.servers {
		out = append(out, p)
	}
	return out
}

// localTIDs returns the top-level TID plus every local subtransaction that
// has not independently aborted.
func localTIDs(lt *localTrans) []types.TransID {
	out := []types.TransID{lt.top}
	for sub, st := range lt.subs {
		if st != types.StatusAborted {
			out = append(out, sub)
		}
	}
	return out
}

// finishLocal releases local state after a terminal outcome.
func (m *Manager) finishLocal(lt *localTrans, st types.Status) {
	m.mu.Lock()
	m.outcomes[lt.top] = st
	if len(m.outcomes) > 65536 {
		// Bound the table; old outcomes fall back to presumed abort.
		m.outcomes = map[types.TransID]types.Status{lt.top: st}
	}
	delete(m.trans, lt.top)
	m.mu.Unlock()
	if m.cm != nil {
		m.cm.ForgetTree(lt.top)
	}
}
