package txn_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tabs/internal/comm"
	"tabs/internal/txn"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// fakeRM records the Recovery Manager calls the Transaction Manager makes.
type fakeRM struct {
	mu       sync.Mutex
	logged   map[types.TransID]bool
	commits  []types.TransID
	prepares []types.TransID
	aborts   []types.TransID
	failNext error
	// changed gets a (non-blocking) token whenever a record is written,
	// so tests can wait on RM activity instead of sleeping.
	changed chan struct{}
}

func newFakeRM() *fakeRM {
	return &fakeRM{logged: make(map[types.TransID]bool), changed: make(chan struct{}, 1)}
}

// notifyLocked signals waiters that the record lists changed.
func (f *fakeRM) notifyLocked() {
	select {
	case f.changed <- struct{}{}:
	default:
	}
}

// waitForCounts blocks until cond holds for the RM's record counts,
// failing the test after a deadline.
func (f *fakeRM) waitForCounts(t *testing.T, cond func(commits, prepares, aborts int) bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if cond(f.counts()) {
			return
		}
		select {
		case <-f.changed:
		case <-deadline:
			c, p, a := f.counts()
			t.Fatalf("timed out waiting on RM records: commits=%d prepares=%d aborts=%d", c, p, a)
		}
	}
}

func (f *fakeRM) markLogged(tid types.TransID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logged[tid] = true
}

func (f *fakeRM) LogCommit(tid types.TransID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext != nil {
		err := f.failNext
		f.failNext = nil
		return err
	}
	f.commits = append(f.commits, tid)
	f.notifyLocked()
	return nil
}

func (f *fakeRM) LogPrepare(tid types.TransID, _ *wal.PrepareBody) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prepares = append(f.prepares, tid)
	f.notifyLocked()
	return nil
}

func (f *fakeRM) Abort(tid types.TransID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.aborts = append(f.aborts, tid)
	f.notifyLocked()
	return nil
}

func (f *fakeRM) HasLogged(tid types.TransID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.logged[tid]
}

func (f *fakeRM) counts() (commits, prepares, aborts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.commits), len(f.prepares), len(f.aborts)
}

// fakeParticipant records lock-release notifications.
type fakeParticipant struct {
	mu      sync.Mutex
	commits []types.TransID
	aborts  []types.TransID
}

func (p *fakeParticipant) CommitTrans(top types.TransID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commits = append(p.commits, top)
}

func (p *fakeParticipant) AbortTrans(tid types.TransID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborts = append(p.aborts, tid)
}

func soloTM() (*txn.Manager, *fakeRM) {
	rm := newFakeRM()
	return txn.New("solo", rm, nil, nil), rm
}

func TestBeginTopLevel(t *testing.T) {
	tm, _ := soloTM()
	tid, err := tm.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if !tid.IsTopLevel() || tid.Node != "solo" {
		t.Errorf("tid %v", tid)
	}
	if tm.Status(tid) != types.StatusActive {
		t.Errorf("status %v", tm.Status(tid))
	}
}

func TestSubtransactionHierarchy(t *testing.T) {
	tm, _ := soloTM()
	top, _ := tm.Begin(types.NilTransID)
	sub, err := tm.Begin(top)
	if err != nil {
		t.Fatal(err)
	}
	if sub.IsTopLevel() || sub.TopLevel() != top {
		t.Errorf("sub %v of %v", sub, top)
	}
	subsub, err := tm.Begin(sub)
	if err != nil {
		t.Fatal(err)
	}
	if subsub.TopLevel() != top {
		t.Errorf("subsub root %v", subsub.TopLevel())
	}
}

func TestSubCommitIsProvisional(t *testing.T) {
	tm, rm := soloTM()
	top, _ := tm.Begin(types.NilTransID)
	sub, _ := tm.Begin(top)
	ok, err := tm.End(sub)
	if err != nil || !ok {
		t.Fatalf("sub end: %v", err)
	}
	// No commit record yet: subtransactions commit with the root
	// (§2.1.3).
	if c, _, _ := rm.counts(); c != 0 {
		t.Errorf("sub end wrote %d commit records", c)
	}
	// The sub cannot be used as a parent anymore.
	if _, err := tm.Begin(sub); err == nil {
		t.Error("Begin under a committed sub succeeded")
	}
}

func TestSubAbortIndependent(t *testing.T) {
	tm, rm := soloTM()
	p := &fakeParticipant{}
	top, _ := tm.Begin(types.NilTransID)
	sub, _ := tm.Begin(top)
	tm.JoinServer(sub, "srv", p)
	rm.markLogged(sub)

	if err := tm.Abort(sub); err != nil {
		t.Fatal(err)
	}
	if _, _, aborts := rm.counts(); aborts != 1 {
		t.Errorf("%d RM aborts, want 1 (only the sub)", aborts)
	}
	if tm.Status(top) != types.StatusActive {
		t.Error("parent died with the sub (§2.1.3 violated)")
	}
	// Parent still commits.
	rm.markLogged(top)
	if ok, err := tm.End(top); err != nil || !ok {
		t.Fatalf("parent commit: %v", err)
	}
}

func TestSubAbortCascadesToDescendants(t *testing.T) {
	tm, rm := soloTM()
	top, _ := tm.Begin(types.NilTransID)
	sub, _ := tm.Begin(top)
	subsub, _ := tm.Begin(sub)
	_ = subsub
	if err := tm.Abort(sub); err != nil {
		t.Fatal(err)
	}
	if _, _, aborts := rm.counts(); aborts != 2 {
		t.Errorf("%d RM aborts, want 2 (sub and its child)", aborts)
	}
}

func TestTopAbortTakesSubs(t *testing.T) {
	tm, rm := soloTM()
	top, _ := tm.Begin(types.NilTransID)
	sub1, _ := tm.Begin(top)
	sub2, _ := tm.Begin(top)
	_, _ = sub1, sub2
	if err := tm.Abort(top); err != nil {
		t.Fatal(err)
	}
	if _, _, aborts := rm.counts(); aborts != 3 {
		t.Errorf("%d RM aborts, want 3 (top + two subs)", aborts)
	}
	if tm.Status(top) != types.StatusAborted {
		t.Errorf("status %v", tm.Status(top))
	}
}

func TestReadOnlyCommitNeedsNoLog(t *testing.T) {
	tm, rm := soloTM()
	p := &fakeParticipant{}
	tid, _ := tm.Begin(types.NilTransID)
	tm.JoinServer(tid, "srv", p)
	ok, err := tm.End(tid)
	if err != nil || !ok {
		t.Fatalf("commit: %v", err)
	}
	if c, _, _ := rm.counts(); c != 0 {
		t.Errorf("read-only commit wrote %d records (Table 5-3 shows none)", c)
	}
	if len(p.commits) != 1 {
		t.Error("participant never told to release locks")
	}
}

func TestWriteCommitForcesLog(t *testing.T) {
	tm, rm := soloTM()
	tid, _ := tm.Begin(types.NilTransID)
	rm.markLogged(tid)
	if ok, err := tm.End(tid); err != nil || !ok {
		t.Fatalf("commit: %v", err)
	}
	if c, _, _ := rm.counts(); c != 1 {
		t.Errorf("%d commit records", c)
	}
}

func TestCommitFailureAborts(t *testing.T) {
	tm, rm := soloTM()
	tid, _ := tm.Begin(types.NilTransID)
	rm.markLogged(tid)
	rm.mu.Lock()
	rm.failNext = errors.New("log full")
	rm.mu.Unlock()
	ok, err := tm.End(tid)
	if ok {
		t.Error("commit reported success despite force failure")
	}
	_ = err
	if tm.Status(tid) != types.StatusAborted {
		t.Errorf("status %v after failed commit", tm.Status(tid))
	}
}

func TestEndUnknownTransaction(t *testing.T) {
	tm, _ := soloTM()
	_, err := tm.End(types.TransID{Node: "solo", Seq: 99, RootNode: "solo", RootSeq: 99})
	if !errors.Is(err, txn.ErrUnknownTrans) {
		t.Errorf("got %v", err)
	}
}

func TestIsAborted(t *testing.T) {
	tm, _ := soloTM()
	top, _ := tm.Begin(types.NilTransID)
	sub, _ := tm.Begin(top)
	if tm.IsAborted(sub) {
		t.Error("live sub reported aborted")
	}
	if err := tm.Abort(top); err != nil {
		t.Fatal(err)
	}
	if !tm.IsAborted(top) {
		t.Error("aborted top not reported")
	}
}

// --- distributed: two TMs over a memory network with fake RMs -------------

type distRig struct {
	net *comm.MemNetwork
	tmA *txn.Manager
	tmB *txn.Manager
	rmA *fakeRM
	rmB *fakeRM
	cmA *comm.Manager
	cmB *comm.Manager
}

func newDistRig(t *testing.T) *distRig {
	t.Helper()
	r := &distRig{net: comm.NewMemNetwork()}
	r.cmA = comm.New("A", r.net.Endpoint("A"), nil)
	r.cmB = comm.New("B", r.net.Endpoint("B"), nil)
	r.rmA, r.rmB = newFakeRM(), newFakeRM()
	r.tmA = txn.New("A", r.rmA, r.cmA, nil)
	r.tmB = txn.New("B", r.rmB, r.cmB, nil)
	r.cmA.SetTransactionNoter(r.tmA)
	r.cmB.SetTransactionNoter(r.tmB)
	r.tmA.Configure(200*time.Millisecond, 0, 0)
	r.tmB.Configure(200*time.Millisecond, 0, 0)
	// A "remote operation" service that registers activity with B's TM.
	r.cmB.RegisterService("op", func(_ types.NodeID, tid types.TransID, _ []byte) ([]byte, error) {
		r.tmB.JoinServer(tid, "srvB", &fakeParticipant{})
		return nil, nil
	})
	return r
}

func TestDistributedCommitTwoNodes(t *testing.T) {
	r := newDistRig(t)
	tid, err := r.tmA.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.cmA.Call("B", "op", tid, nil); err != nil {
		t.Fatal(err)
	}
	r.rmA.markLogged(tid)
	r.rmB.markLogged(tid)
	ok, err := r.tmA.End(tid)
	if err != nil || !ok {
		t.Fatalf("distributed commit: ok=%v err=%v", ok, err)
	}
	// Coordinator wrote a commit; participant prepared then committed.
	if c, _, _ := r.rmA.counts(); c != 1 {
		t.Errorf("coordinator commit records: %d", c)
	}
	r.rmB.waitForCounts(t, func(c, p, _ int) bool { return c == 1 && p == 1 })
}

func TestDistributedReadOnlyParticipantSkipsPhase2(t *testing.T) {
	r := newDistRig(t)
	tid, _ := r.tmA.Begin(types.NilTransID)
	if _, err := r.cmA.Call("B", "op", tid, nil); err != nil {
		t.Fatal(err)
	}
	// Only the coordinator wrote.
	r.rmA.markLogged(tid)
	ok, err := r.tmA.End(tid)
	if err != nil || !ok {
		t.Fatalf("commit: %v", err)
	}
	// A read-only participant must never see phase 2: fail the moment B's
	// RM writes any record, and declare success after a quiet window.
	select {
	case <-r.rmB.changed:
		c, p, a := r.rmB.counts()
		t.Errorf("read-only participant logged: commits=%d prepares=%d aborts=%d", c, p, a)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestDistributedAbortPropagates(t *testing.T) {
	r := newDistRig(t)
	tid, _ := r.tmA.Begin(types.NilTransID)
	if _, err := r.cmA.Call("B", "op", tid, nil); err != nil {
		t.Fatal(err)
	}
	r.rmB.markLogged(tid)
	if err := r.tmA.Abort(tid); err != nil {
		t.Fatal(err)
	}
	r.rmB.waitForCounts(t, func(_, _, a int) bool { return a >= 1 })
	if r.tmA.Status(tid) != types.StatusAborted {
		t.Errorf("coordinator status %v", r.tmA.Status(tid))
	}
}

func TestCommitSurvivesDatagramLoss(t *testing.T) {
	// Wrap A's transport to drop a third of datagrams: the retry logic
	// must still drive 2PC to completion.
	net := comm.NewMemNetwork()
	flakyA := comm.NewFlaky(net.Endpoint("A"), 7, 0.33, 0.1)
	cmA := comm.New("A", flakyA, nil)
	cmB := comm.New("B", net.Endpoint("B"), nil)
	rmA, rmB := newFakeRM(), newFakeRM()
	tmA := txn.New("A", rmA, cmA, nil)
	tmB := txn.New("B", rmB, cmB, nil)
	cmA.SetTransactionNoter(tmA)
	cmB.SetTransactionNoter(tmB)
	tmA.Configure(100*time.Millisecond, 10, 0)
	tmB.Configure(100*time.Millisecond, 10, 0)
	cmB.RegisterService("op", func(_ types.NodeID, tid types.TransID, _ []byte) ([]byte, error) {
		tmB.JoinServer(tid, "srvB", &fakeParticipant{})
		return nil, nil
	})

	for i := 0; i < 5; i++ {
		tid, _ := tmA.Begin(types.NilTransID)
		if _, err := cmA.Call("B", "op", tid, nil); err != nil {
			t.Fatal(err)
		}
		rmA.markLogged(tid)
		rmB.markLogged(tid)
		ok, err := tmA.End(tid)
		if err != nil || !ok {
			t.Fatalf("iteration %d: commit under loss failed: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestStatusQueryPresumedAbort(t *testing.T) {
	r := newDistRig(t)
	// Ask A about a transaction it has never heard of: presumed abort.
	ghost := types.TransID{Node: "A", Seq: 12345, RootNode: "A", RootSeq: 12345}
	st := r.tmB.ResolveStatus(ghost, &wal.PrepareBody{Parent: "A"})
	if st != types.StatusAborted {
		t.Errorf("unknown transaction resolved as %v, want aborted (presumed abort)", st)
	}
}

func TestRestoreTransRecordRebuildsOutcomes(t *testing.T) {
	tm, _ := soloTM()
	tid := types.TransID{Node: "solo", Seq: 5, RootNode: "solo", RootSeq: 5}
	tm.RestoreTransRecord(&wal.Record{TID: tid, Type: wal.RecCommit})
	if tm.Status(tid) != types.StatusCommitted {
		t.Errorf("restored status %v", tm.Status(tid))
	}
}
