// Package types defines the identifiers shared by every TABS component:
// node names, transaction identifiers, and the ObjectIDs through which data
// servers address recoverable storage (paper §3.1.1).
package types

import (
	"strconv"
)

// NodeID names a TABS node (one simulated machine).
type NodeID string

// ServerID names a data server. The Name Server maps external names to
// <port, logical object identifier> pairs; within this implementation a
// data server's registered name doubles as its routing identifier.
type ServerID string

// SegmentID identifies one recoverable segment on a node. Segments are the
// disk files that hold a data server's permanent data, mapped into virtual
// memory by the kernel (§3.2.1).
type SegmentID uint32

// TransID identifies a transaction globally. The Transaction Manager
// allocates identifiers that are unique across nodes (§3.2.3): Node is the
// node that created this (sub)transaction and Seq its local sequence
// number there. RootNode/RootSeq identify the top-level ancestor whose
// commit finally commits a subtransaction's effects (§2.1.3); for a
// top-level transaction they equal Node/Seq.
type TransID struct {
	Node     NodeID
	Seq      uint64
	RootNode NodeID
	RootSeq  uint64
}

// NilTransID is the distinguished null transaction identifier passed to
// BeginTransaction to create a new top-level transaction (§3.1.2).
var NilTransID = TransID{}

// IsNil reports whether t is the null transaction identifier.
func (t TransID) IsNil() bool { return t == NilTransID }

// IsTopLevel reports whether t identifies a top-level transaction.
func (t TransID) IsTopLevel() bool {
	return !t.IsNil() && t.Node == t.RootNode && t.Seq == t.RootSeq
}

// TopLevel returns the identifier of t's top-level ancestor.
func (t TransID) TopLevel() TransID {
	return TransID{Node: t.RootNode, Seq: t.RootSeq, RootNode: t.RootNode, RootSeq: t.RootSeq}
}

// String formats the identifier as root[.node:seq].
func (t TransID) String() string {
	if t.IsNil() {
		return "T(nil)"
	}
	return string(t.AppendString(make([]byte, 0, 24)))
}

// AppendString appends the String form to b without allocating, for
// hot-path trace annotation (identifiers are formatted on every traced
// lock acquire; fmt would dominate the profile).
func (t TransID) AppendString(b []byte) []byte {
	if t.IsNil() {
		return append(b, "T(nil)"...)
	}
	if t.IsTopLevel() {
		b = append(b, t.Node...)
		b = append(b, ':')
		return strconv.AppendUint(b, t.Seq, 10)
	}
	b = append(b, t.RootNode...)
	b = append(b, ':')
	b = strconv.AppendUint(b, t.RootSeq, 10)
	b = append(b, '[')
	b = append(b, t.Node...)
	b = append(b, ':')
	b = strconv.AppendUint(b, t.Seq, 10)
	return append(b, ']')
}

// ObjectID names a lockable, loggable unit of recoverable storage: a byte
// range within a recoverable segment. Data servers create ObjectIDs from
// virtual addresses with CreateObjectID and convert back with
// ConvertObjectIDToVirtualAddress (§3.1.1); both directions are trivial
// here because an ObjectID *is* the segment-relative address.
type ObjectID struct {
	Segment SegmentID
	Offset  uint32
	Length  uint32
}

// String formats the ObjectID as seg/offset+len.
func (o ObjectID) String() string {
	return string(o.AppendString(make([]byte, 0, 24)))
}

// AppendString appends the String form to b without allocating.
func (o ObjectID) AppendString(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(o.Segment), 10)
	b = append(b, '/')
	b = strconv.AppendUint(b, uint64(o.Offset), 10)
	b = append(b, '+')
	return strconv.AppendUint(b, uint64(o.Length), 10)
}

// Overlaps reports whether two ObjectIDs denote overlapping byte ranges of
// the same segment.
func (o ObjectID) Overlaps(p ObjectID) bool {
	if o.Segment != p.Segment {
		return false
	}
	return o.Offset < p.Offset+p.Length && p.Offset < o.Offset+o.Length
}

// PageSize is the unit of paging and of value-log records: TABS pages are
// 512 bytes (§5.1) and a value log record holds at most one page of old and
// new value (§2.1.3).
const PageSize = 512

// PageID identifies one page of a recoverable segment.
type PageID struct {
	Segment SegmentID
	Page    uint32
}

// String formats the PageID as seg:page.
func (p PageID) String() string {
	b := strconv.AppendUint(make([]byte, 0, 16), uint64(p.Segment), 10)
	b = append(b, ':')
	return string(strconv.AppendUint(b, uint64(p.Page), 10))
}

// FirstPage returns the page containing the first byte of o.
func (o ObjectID) FirstPage() PageID {
	return PageID{Segment: o.Segment, Page: o.Offset / PageSize}
}

// Pages returns every page the object's byte range touches.
func (o ObjectID) Pages() []PageID {
	if o.Length == 0 {
		return []PageID{o.FirstPage()}
	}
	first := o.Offset / PageSize
	last := (o.Offset + o.Length - 1) / PageSize
	out := make([]PageID, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, PageID{Segment: o.Segment, Page: p})
	}
	return out
}

// Status is the externally visible state of a transaction, as reported by
// the Transaction Manager during recovery and by TransactionIsAborted.
type Status int

// Transaction states. Prepared is the 2PC window in which a participant
// must preserve the transaction's effects until the coordinator decides.
const (
	StatusUnknown Status = iota
	StatusActive
	StatusPrepared
	StatusCommitted
	StatusAborted
)

// String returns the state name.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "unknown"
	}
}
