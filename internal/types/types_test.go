package types

import (
	"testing"
	"testing/quick"
)

func TestNilTransID(t *testing.T) {
	if !NilTransID.IsNil() {
		t.Error("NilTransID not nil")
	}
	if NilTransID.IsTopLevel() {
		t.Error("nil TID reported top level")
	}
	tid := TransID{Node: "a", Seq: 1, RootNode: "a", RootSeq: 1}
	if tid.IsNil() {
		t.Error("real TID reported nil")
	}
}

func TestTopLevel(t *testing.T) {
	top := TransID{Node: "a", Seq: 5, RootNode: "a", RootSeq: 5}
	if !top.IsTopLevel() {
		t.Error("top-level TID not recognized")
	}
	sub := TransID{Node: "b", Seq: 9, RootNode: "a", RootSeq: 5}
	if sub.IsTopLevel() {
		t.Error("subtransaction reported top level")
	}
	if sub.TopLevel() != top {
		t.Errorf("TopLevel() = %v, want %v", sub.TopLevel(), top)
	}
	if top.TopLevel() != top {
		t.Error("TopLevel not idempotent on a root")
	}
}

func TestTransIDString(t *testing.T) {
	if NilTransID.String() != "T(nil)" {
		t.Errorf("nil string %q", NilTransID.String())
	}
	top := TransID{Node: "a", Seq: 5, RootNode: "a", RootSeq: 5}
	if top.String() != "a:5" {
		t.Errorf("top string %q", top.String())
	}
	sub := TransID{Node: "b", Seq: 9, RootNode: "a", RootSeq: 5}
	if sub.String() != "a:5[b:9]" {
		t.Errorf("sub string %q", sub.String())
	}
}

func TestObjectPages(t *testing.T) {
	// Entirely inside one page.
	o := ObjectID{Segment: 1, Offset: 10, Length: 20}
	pages := o.Pages()
	if len(pages) != 1 || pages[0] != (PageID{Segment: 1, Page: 0}) {
		t.Errorf("pages %v", pages)
	}
	// Spanning a boundary.
	o = ObjectID{Segment: 1, Offset: PageSize - 4, Length: 8}
	pages = o.Pages()
	if len(pages) != 2 || pages[0].Page != 0 || pages[1].Page != 1 {
		t.Errorf("spanning pages %v", pages)
	}
	// Exactly one page, aligned.
	o = ObjectID{Segment: 1, Offset: PageSize, Length: PageSize}
	pages = o.Pages()
	if len(pages) != 1 || pages[0].Page != 1 {
		t.Errorf("aligned page %v", pages)
	}
	// Zero length still names its containing page.
	o = ObjectID{Segment: 1, Offset: 3 * PageSize, Length: 0}
	pages = o.Pages()
	if len(pages) != 1 || pages[0].Page != 3 {
		t.Errorf("zero length pages %v", pages)
	}
}

func TestPagesCoverObjectQuick(t *testing.T) {
	// Property: every byte of the object lies in some returned page, and
	// every returned page contains at least one byte of the object.
	f := func(off uint16, length uint16) bool {
		o := ObjectID{Segment: 1, Offset: uint32(off), Length: uint32(length)%2048 + 1}
		pages := o.Pages()
		first := o.Offset / PageSize
		last := (o.Offset + o.Length - 1) / PageSize
		if uint32(len(pages)) != last-first+1 {
			return false
		}
		for i, p := range pages {
			if p.Page != first+uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := ObjectID{Segment: 1, Offset: 0, Length: 10}
	b := ObjectID{Segment: 1, Offset: 5, Length: 10}
	c := ObjectID{Segment: 1, Offset: 10, Length: 10}
	d := ObjectID{Segment: 2, Offset: 0, Length: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping ranges not detected")
	}
	if a.Overlaps(c) {
		t.Error("adjacent ranges reported overlapping")
	}
	if a.Overlaps(d) {
		t.Error("different segments reported overlapping")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusActive:    "active",
		StatusPrepared:  "prepared",
		StatusCommitted: "committed",
		StatusAborted:   "aborted",
		StatusUnknown:   "unknown",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
