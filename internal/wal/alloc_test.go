package wal

import (
	"bytes"
	"testing"

	"tabs/internal/disk"
	"tabs/internal/stats"
	"tabs/internal/types"
)

// These tests pin down the allocation behavior of the append hot path. The
// original Encode built each record's payload in one buffer and then
// allocated a second buffer just to prepend the frame length; Append then
// copied the result into the log buffer — two allocations and an extra copy
// per record. AppendEncode builds the frame in place in a caller-owned
// buffer, and Append encodes straight into l.buf.

func sampleRecord() *Record {
	return &Record{
		LSN:     41,
		PrevLSN: 17,
		TID:     sampleTID(),
		Type:    RecUpdate,
		Server:  "array",
		Body:    []byte("0123456789abcdef0123456789abcdef"),
	}
}

// TestAppendEncodeOneBuffer is the regression test for the two-allocation
// framing bug: encoding into a buffer with sufficient capacity must not
// allocate at all, and must produce byte-identical output to Encode.
func TestAppendEncodeOneBuffer(t *testing.T) {
	r := sampleRecord()
	want, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 0, 4*len(want))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = AppendEncode(dst[:0], r)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendEncode into a sized buffer: %.1f allocs/op, want 0", allocs)
	}
	if !bytes.Equal(dst, want) {
		t.Errorf("AppendEncode output differs from Encode:\n got %x\nwant %x", dst, want)
	}

	// The frame must also append cleanly after existing bytes.
	prefix := []byte("existing")
	out, err := AppendEncode(append([]byte(nil), prefix...), r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Error("AppendEncode clobbered existing bytes in dst")
	}
	got, n, err := Decode(out[len(prefix):], r.LSN)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out)-len(prefix) || got.TID != r.TID || !bytes.Equal(got.Body, r.Body) {
		t.Errorf("appended frame did not round-trip: %+v", got)
	}
}

// TestAppendEncodeErrorLeavesDst verifies the documented contract that a
// validation failure appends nothing.
func TestAppendEncodeErrorLeavesDst(t *testing.T) {
	dst := []byte("keep")
	out, err := AppendEncode(dst, &Record{TID: sampleTID(), Body: make([]byte, MaxBodySize+1)})
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if !bytes.Equal(out, []byte("keep")) {
		t.Errorf("dst modified on error: %q", out)
	}
}

// TestAppendAllocBudget gates the whole Append path: once the log buffer and
// record index have warmed up, a batch of appends plus a force must stay far
// below one allocation per record. The old path paid at least two per
// record, so the budget fails if per-append allocation is reintroduced.
func TestAppendAllocBudget(t *testing.T) {
	d := disk.New(disk.DefaultGeometry(1 << 14))
	lg, err := Open(Config{Disk: d, Base: 0, Sectors: 1 << 12, Rec: stats.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	body := EncodeUpdate(&UpdateBody{
		Object: types.ObjectID{Segment: 1, Offset: 0, Length: 32},
		Old:    make([]byte, 32),
		New:    make([]byte, 32),
	})
	run := func() {
		for i := 0; i < batch; i++ {
			if _, err := lg.Append(&Record{TID: sampleTID(), Type: RecUpdate, Server: "s", Body: body}); err != nil {
				t.Fatal(err)
			}
		}
		if err := lg.Force(lg.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up buffer and index capacity
	allocs := testing.AllocsPerRun(20, run)
	perRecord := allocs / batch
	if perRecord > 0.5 {
		t.Errorf("append hot path: %.2f allocs/record (%.1f per %d-record batch), want < 0.5",
			perRecord, allocs, batch)
	}
}

func BenchmarkAppendForce(b *testing.B) {
	d := disk.New(disk.DefaultGeometry(1 << 16))
	lg, err := Open(Config{Disk: d, Base: 0, Sectors: 1 << 14, Rec: stats.NewRecorder()})
	if err != nil {
		b.Fatal(err)
	}
	body := EncodeUpdate(&UpdateBody{
		Object: types.ObjectID{Segment: 1, Offset: 0, Length: 64},
		Old:    make([]byte, 64),
		New:    make([]byte, 64),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lg.Append(&Record{TID: sampleTID(), Type: RecUpdate, Server: "s", Body: body}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if err := lg.Force(lg.NextLSN()); err != nil {
				b.Fatal(err)
			}
			// Recycle log space so b.N appends cannot exhaust the region.
			if err := lg.Reclaim(lg.DurableLSN()); err != nil {
				b.Fatal(err)
			}
		}
	}
}
