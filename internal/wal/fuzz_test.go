package wal

import (
	"bytes"
	"testing"

	"tabs/internal/types"
)

// FuzzRecordRoundTrip hammers the record codec with arbitrary bytes. The
// invariants: no input may panic or trigger an allocation proportional to
// a claimed (unvalidated) count; any frame that decodes must re-encode to
// the identical bytes; and every typed body codec must round-trip exactly
// when it accepts an input. The codec is the one piece of this system
// that parses bytes straight off the (simulated) disk, where a torn write
// or a stale log area hands it arbitrary garbage.
func FuzzRecordRoundTrip(f *testing.F) {
	tid := types.TransID{Node: "n1", RootNode: "root", Seq: 7, RootSeq: 3}
	seeds := []*Record{
		{LSN: 1, Type: RecCommit, TID: tid},
		{LSN: 2, PrevLSN: 1, Type: RecAbort, TID: tid},
		{LSN: 3, PrevLSN: 1, Type: RecUpdate, TID: tid, Server: "array", Body: EncodeUpdate(&UpdateBody{
			Object: types.ObjectID{Segment: 4, Offset: 128, Length: 8},
			Old:    []byte{1, 2, 3, 4},
			New:    []byte{5, 6, 7, 8},
		})},
		{LSN: 4, Type: RecOperation, TID: tid, Server: "queue", Body: EncodeOperation(&OperationBody{
			Op:       "enqueue",
			RedoArgs: []byte("redo-args"),
			UndoArgs: []byte("undo-args"),
			Pages:    []PageSeq{{Page: types.PageID{Segment: 4, Page: 9}, Seq: 11}},
		})},
		{LSN: 5, Type: RecCheckpoint, Body: EncodeCheckpoint(&CheckpointBody{
			DirtyPages: []DirtyPage{{Page: types.PageID{Segment: 1, Page: 2}, RecLSN: 3}},
			Active:     []ActiveTrans{{TID: tid, Status: types.StatusActive, LastLSN: 4, FirstLSN: 2}},
		})},
		{LSN: 6, Type: RecPrepare, TID: tid, Body: EncodePrepare(&PrepareBody{
			Parent:   "coord",
			Children: []types.NodeID{"p1", "p2"},
		})},
		{LSN: 8, Type: RecPrepare, TID: tid, Body: EncodePrepare(&PrepareBody{
			Parent:    "coord",
			Children:  []types.NodeID{"p1"},
			Acceptors: []types.NodeID{"a1", "a2", "a3"},
		})},
		{LSN: 9, Type: RecCheckpoint, Body: EncodeCheckpoint(&CheckpointBody{
			ACP: []byte{0xde, 0xad, 0xbe, 0xef},
		})},
		{LSN: 7, Type: RecUpdateCLR, TID: tid, Body: EncodeCLR(&CLRBody{CompLSN: 3, Inner: []byte("inner")})},
	}
	for _, r := range seeds {
		enc, err := Encode(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		if len(r.Body) > 0 {
			f.Add(r.Body)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Typed body codecs see raw bytes directly: recovery trusts the
		// frame CRC but the bodies still must never misbehave on garbage.
		if u, err := DecodeUpdate(data); err == nil {
			if !bytes.Equal(EncodeUpdate(u), data) {
				t.Fatal("update body round-trip mismatch")
			}
		}
		if o, err := DecodeOperation(data); err == nil {
			if !bytes.Equal(EncodeOperation(o), data) {
				t.Fatal("operation body round-trip mismatch")
			}
		}
		if c, err := DecodeCheckpoint(data); err == nil {
			if !bytes.Equal(EncodeCheckpoint(c), data) {
				t.Fatal("checkpoint body round-trip mismatch")
			}
		}
		if p, err := DecodePrepare(data); err == nil {
			if !bytes.Equal(EncodePrepare(p), data) {
				t.Fatal("prepare body round-trip mismatch")
			}
		}
		if c, err := DecodeCLR(data); err == nil {
			if !bytes.Equal(EncodeCLR(c), data) {
				t.Fatal("CLR body round-trip mismatch")
			}
		}

		r, n, err := Decode(data, 0)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		enc, err := Encode(r)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("frame round-trip mismatch:\n got %x\nwant %x", enc, data[:n])
		}
	})
}
