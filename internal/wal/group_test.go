package wal

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"tabs/internal/disk"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/trace"
)

// slowLog builds a log over a disk whose every access sleeps for a scaled
// fraction of its modelled latency, so forces take real wall time and
// concurrent committers pile up behind an in-flight batch the way they do
// behind a physical arm.
func slowLog(t *testing.T, sectors int64, perMillis time.Duration, noGroup bool) (*Log, *disk.Disk, *stats.Recorder, *trace.Tracer) {
	t.Helper()
	d := disk.New(disk.DefaultGeometry(sectors + 16))
	if perMillis > 0 {
		d.SetIOHook(func(ms float64, _ bool) {
			time.Sleep(time.Duration(ms * float64(perMillis)))
		})
	}
	rec := stats.NewRecorder()
	tr := trace.New("t", 64)
	lg, err := Open(Config{Disk: d, Base: 0, Sectors: sectors, Rec: rec, Trace: tr, DisableGroupCommit: noGroup})
	if err != nil {
		t.Fatal(err)
	}
	return lg, d, rec, tr
}

// TestGroupCommitBatchesConcurrentCommitters drives K goroutines through
// AppendAndForce against a slow disk and checks that the committers
// amortized Stable Storage Writes: far fewer forces than commits, and a
// mean group size above one.
func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	const workers, perWorker = 8, 12
	lg, _, rec, tr := slowLog(t, 1024, 10*time.Microsecond, false)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := &Record{TID: tid(uint64(w*perWorker + i + 1)), Type: RecCommit}
				if _, err := lg.AppendAndForce(r); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if lg.DurableLSN() != lg.NextLSN() {
		t.Fatalf("durable %d != next %d after all commits acked", lg.DurableLSN(), lg.NextLSN())
	}
	commits := float64(workers * perWorker)
	writes := rec.Snapshot(stats.PreCommit)[simclock.StableWrite]
	if writes > commits/2 {
		t.Errorf("group commit did not batch: %g stable writes for %g commits", writes, commits)
	}
	m := tr.MetricsSnapshot()
	gs := m["wal.force.group_size"]
	if gs.Count == 0 || gs.Mean <= 1 {
		t.Errorf("group_size metric mean %.2f (count %d), want > 1", gs.Mean, gs.Count)
	}
}

// TestAppendDoesNotBlockBehindForce checks the append/force pipeline: with
// a flush deliberately held open on the disk, Append must still complete.
func TestAppendDoesNotBlockBehindForce(t *testing.T) {
	d := disk.New(disk.DefaultGeometry(1024 + 16))
	lg, err := Open(Config{Disk: d, Base: 0, Sectors: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Install the stall only after Open: Open itself writes the anchor.
	release := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	d.SetIOHook(func(ms float64, _ bool) {
		once.Do(func() {
			close(gate) // the force's first disk access has started
			<-release   // ... and now stalls
		})
	})
	if _, err := lg.Append(&Record{TID: tid(1), Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	forceDone := make(chan error, 1)
	go func() { forceDone <- lg.Force(lg.NextLSN()) }()
	<-gate // the force is now mid-write on the disk

	appendDone := make(chan error, 1)
	go func() {
		_, err := lg.Append(&Record{TID: tid(2), Type: RecCommit})
		appendDone <- err
	}()
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Append blocked behind an in-flight force")
	}
	close(release)
	if err := <-forceDone; err != nil {
		t.Fatal(err)
	}
	// The second record landed in the next batch.
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if lg.DurableLSN() != lg.NextLSN() {
		t.Fatalf("durable %d != next %d", lg.DurableLSN(), lg.NextLSN())
	}
}

// TestConcurrentCommitRacingReclaim races N committing goroutines against
// a reclaimer trimming the log at acked record boundaries; every surviving
// record must stay readable and the log prefix-consistent.
func TestConcurrentCommitRacingReclaim(t *testing.T) {
	const workers, perWorker = 6, 25
	lg, _, _, _ := slowLog(t, 64, 0, false) // tiny log: reclamation matters

	acked := make(chan LSN, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := make([]byte, 300) // bulk so the 64-sector log needs reclaiming
			for i := 0; i < perWorker; i++ {
				r := &Record{TID: tid(uint64(w*perWorker + i + 1)), Type: RecCommit, Body: body}
				lsn, err := lg.AppendAndForce(r)
				if errors.Is(err, ErrLogFull) {
					i-- // reclaimer will free space; retry
					runtime.Gosched()
					continue
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				acked <- lsn
			}
		}(w)
	}
	reclaimDone := make(chan struct{})
	go func() {
		defer close(reclaimDone)
		for lsn := range acked {
			// Acked records are durable, and their start LSN is a record
			// boundary; reclaiming below the low-water mark is a no-op.
			if err := lg.Reclaim(lsn); err != nil {
				t.Errorf("reclaim to %d: %v", lsn, err)
				return
			}
			if err := lg.ScanForward(lg.LowLSN(), func(*Record) (bool, error) { return true, nil }); err != nil {
				t.Errorf("scan during reclaim races: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(acked)
	<-reclaimDone

	// Everything still retained must decode in ascending LSN order.
	var prev LSN
	if err := lg.ScanForward(lg.LowLSN(), func(r *Record) (bool, error) {
		if r.LSN <= prev {
			t.Errorf("scan order broken: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidForceRecoversPrefix snapshots the disk at arbitrary moments
// while concurrent committers (and injected write failures) are in flight —
// the moral equivalent of pulling the plug mid-force — then reopens the log
// from each snapshot and requires (a) a cleanly decodable record prefix and
// (b) every commit acked before the snapshot to be present in it.
func TestCrashMidForceRecoversPrefix(t *testing.T) {
	const workers, perWorker, snapshots = 4, 30, 8
	lg, d, _, _ := slowLog(t, 2048, 2*time.Microsecond, false)

	var mu sync.Mutex
	ackedSet := make(map[LSN]bool)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := &Record{TID: tid(uint64(w*perWorker + i + 1)), Type: RecCommit}
				lsn, err := lg.AppendAndForce(r)
				if err != nil {
					// An injected failure; the record is not acked.
					continue
				}
				mu.Lock()
				ackedSet[lsn] = true
				mu.Unlock()
			}
		}(w)
	}
	// Fault injector: bursts of failed writes while commits are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d.FailNextWrites(2)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	checkSnapshot := func(n int) {
		// Copy the acked set FIRST: anything acked before the copy was
		// durable before the disk snapshot below, so it must survive.
		mu.Lock()
		acked := make([]LSN, 0, len(ackedSet))
		for lsn := range ackedSet {
			acked = append(acked, lsn)
		}
		mu.Unlock()
		snap := d.Snapshot()

		d2 := disk.New(disk.DefaultGeometry(2048 + 16))
		if err := d2.Restore(snap); err != nil {
			t.Fatal(err)
		}
		lg2, err := Open(Config{Disk: d2, Base: 0, Sectors: 2048})
		if err != nil {
			t.Fatalf("snapshot %d: reopening crashed log: %v", n, err)
		}
		recovered := make(map[LSN]bool)
		var prev LSN
		if err := lg2.ScanForward(0, func(r *Record) (bool, error) {
			if r.LSN <= prev {
				t.Errorf("snapshot %d: non-monotonic recovery scan", n)
			}
			prev = r.LSN
			recovered[r.LSN] = true
			return true, nil
		}); err != nil {
			t.Fatalf("snapshot %d: scanning recovered log: %v", n, err)
		}
		for _, lsn := range acked {
			if !recovered[lsn] {
				t.Errorf("snapshot %d: acked commit at LSN %d lost by crash recovery", n, lsn)
			}
		}
	}
	for i := 0; i < snapshots; i++ {
		time.Sleep(300 * time.Microsecond)
		checkSnapshot(i)
	}
	close(stop)
	wg.Wait()
	checkSnapshot(snapshots)
}

// TestForceFailurePropagatesAndRetries: a failed group force must surface
// the write error to its leader, leave the log consistent, and succeed on
// retry.
func TestForceFailurePropagatesAndRetries(t *testing.T) {
	lg, d, rec, _ := slowLog(t, 64, 0, false)
	if _, err := lg.Append(&Record{TID: tid(1), Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	d.FailNextWrites(1)
	if err := lg.Force(lg.NextLSN()); err == nil {
		t.Fatal("force with injected write failure returned nil")
	}
	if lg.DurableLSN() != firstLSN {
		t.Errorf("durable LSN advanced past a failed write: %d", lg.DurableLSN())
	}
	if got := rec.Snapshot(stats.PreCommit)[simclock.StableWrite]; got != 0 {
		t.Errorf("failed force charged a stable write: %g", got)
	}
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if lg.DurableLSN() != lg.NextLSN() {
		t.Errorf("retry did not make the log durable")
	}
	r, err := lg.ReadRecord(firstLSN)
	if err != nil || r.TID.Seq != 1 {
		t.Fatalf("record unreadable after retry: %v %v", r, err)
	}
}

// TestDisableGroupCommitSynchronousSemantics covers the paper-faithful
// knob: one stable write per force, buffer drained under the mutex.
func TestDisableGroupCommitSynchronousSemantics(t *testing.T) {
	lg, _, rec, tr := slowLog(t, 64, 0, true)
	for i := 1; i <= 3; i++ {
		if _, err := lg.AppendAndForce(&Record{TID: tid(uint64(i)), Type: RecCommit}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Snapshot(stats.PreCommit)[simclock.StableWrite]; got != 3 {
		t.Errorf("synchronous mode: %g stable writes for 3 commits, want 3", got)
	}
	if gs := tr.MetricsSnapshot()["wal.force.group_size"]; gs.Count != 0 {
		t.Errorf("synchronous mode recorded group sizes: %+v", gs)
	}
	if lg.DurableLSN() != lg.NextLSN() {
		t.Errorf("log not durable after synchronous forces")
	}
}

// BenchmarkGroupCommit measures commit throughput (AppendAndForce from
// parallel goroutines) with group commit on and off, against a disk whose
// latency model is scaled into real time. The CI smoke step runs this with
// -benchtime=1x to keep it from bit-rotting.
func BenchmarkGroupCommit(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noGroup bool
	}{{"grouped", false}, {"nogroup", true}} {
		b.Run(mode.name, func(b *testing.B) {
			d := disk.New(disk.DefaultGeometry(1 << 16))
			d.SetIOHook(func(ms float64, _ bool) {
				time.Sleep(time.Duration(ms * float64(5*time.Microsecond)))
			})
			rec := stats.NewRecorder()
			lg, err := Open(Config{Disk: d, Base: 0, Sectors: 1 << 15, Rec: rec, DisableGroupCommit: mode.noGroup})
			if err != nil {
				b.Fatal(err)
			}
			var seq uint64
			var seqMu sync.Mutex
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					seqMu.Lock()
					seq++
					s := seq
					seqMu.Unlock()
					if _, err := lg.AppendAndForce(&Record{TID: tid(s), Type: RecCommit}); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			writes := rec.Snapshot(stats.PreCommit)[simclock.StableWrite]
			if b.N > 0 {
				b.ReportMetric(writes/float64(b.N), "stablewrites/txn")
			}
		})
	}
}
