package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tabs/internal/disk"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/trace"
)

// Log manages the node's common write-ahead log on a circular region of the
// simulated disk. Records are appended to a volatile buffer and become
// durable when forced — by the commit protocol, by the write-ahead rule
// before a page steal, or when the buffer fills (§3.2.2).
//
// Forcing is a *group commit*: concurrent Force callers do not each pay a
// Stable Storage Write. The first caller to find no flush in flight becomes
// the leader: it snapshots the pending region [durableLSN, nextLSN), drops
// the mutex, and writes the whole region as one sector batch while later
// callers park on a condition variable. When the leader finishes it wakes
// every waiter; waiters whose target is now ≤ durableLSN return without
// touching the disk, and one unsatisfied waiter (if any) leads the next
// batch. Append and force are pipelined: because the leader flushes a
// snapshot without holding the log mutex, Append never blocks behind an
// in-flight disk write — newly appended records simply land in the next
// batch. Config.DisableGroupCommit restores the original synchronous
// behavior (one write per Force, performed under the mutex) for faithful
// reproduction of the paper's per-transaction commit accounting
// (Tables 5-2/5-3).
//
// Physical layout: the first sector of the region is the anchor (checkpoint
// pointer and low-water mark); the remaining sectors hold the record stream
// addressed by LSN modulo the data capacity.
type Log struct {
	mu   sync.Mutex
	d    *disk.Disk
	base disk.Addr // anchor sector
	data int64     // number of data sectors
	rec  *stats.Recorder
	tr   *trace.Tracer

	noGroup bool      // Config.DisableGroupCommit
	fh      FaultHook // Config.FaultHook

	lowLSN     LSN // oldest retained byte (record boundary)
	durableLSN LSN // everything below is on disk
	nextLSN    LSN // next byte to be assigned
	ckptLSN    LSN // LSN of the last checkpoint record

	buf      []byte // appended but not yet forced bytes [durableLSN, nextLSN)
	index    []LSN  // start LSNs of retained records, ascending
	fullWarn bool

	// Group-commit state. flushCond is signalled each time a flush
	// generation completes (successfully or not); parked maps a waiting
	// Force caller's token to its target LSN so the leader can size the
	// group it amortized.
	flushCond *sync.Cond
	flushing  bool // a leader is writing to disk with mu released
	flushGen  uint64
	flushErr  error // outcome of the generation that just completed
	parked    map[uint64]LSN
	parkSeq   uint64
}

// Errors returned by the log manager.
var (
	ErrLogFull    = errors.New("wal: log space exhausted; reclamation required")
	ErrBadAnchor  = errors.New("wal: anchor sector corrupt")
	ErrOutOfRange = errors.New("wal: LSN out of retained range")
)

const anchorMagic = 0x7AB5106A

// firstLSN is where a fresh log starts; LSN 0 is reserved as NilLSN.
const firstLSN LSN = 1

// Config describes where a Log lives and how it is instrumented.
type Config struct {
	Disk    *disk.Disk
	Base    disk.Addr // first sector of the log region (the anchor)
	Sectors int64     // total sectors including the anchor
	Rec     *stats.Recorder
	Trace   *trace.Tracer
	// DisableGroupCommit turns off group commit and append/force
	// pipelining: every Force performs its own disk write synchronously
	// while holding the log mutex, exactly as the paper's TABS charged one
	// Stable Storage Write per committing transaction. Group commit keeps
	// per-force accounting compatible with Table 5-1 (a group force is
	// still one Stable Storage Write), but under concurrency it changes
	// how many forces N committers pay; disable it to reproduce the
	// Table 5-2/5-3 per-transaction counts with no amortization possible.
	DisableGroupCommit bool
	// FaultHook, when set, is consulted at named points before the log
	// touches state: "wal.append" just before a record is admitted to the
	// volatile buffer, and "wal.force" just before a batch goes to disk. A
	// non-nil error fails the operation. The fault-injection layer
	// (internal/fault) supplies deterministic seeded hooks; nil (the
	// default) injects nothing.
	FaultHook FaultHook
}

// FaultHook is the log's fault-injection callback; see Config.FaultHook.
type FaultHook func(point string) error

// Open mounts the log region, reading the anchor and scanning forward from
// the low-water mark to find the durable end of the log, exactly as crash
// recovery must (§3.2.2). A region whose anchor is unwritten is formatted
// as an empty log.
func Open(cfg Config) (*Log, error) {
	if cfg.Sectors < 2 {
		return nil, fmt.Errorf("wal: region needs at least 2 sectors, got %d", cfg.Sectors)
	}
	l := &Log{
		d:       cfg.Disk,
		base:    cfg.Base,
		data:    cfg.Sectors - 1,
		rec:     cfg.Rec,
		tr:      cfg.Trace,
		noGroup: cfg.DisableGroupCommit,
		fh:      cfg.FaultHook,
		parked:  make(map[uint64]LSN),
	}
	l.flushCond = sync.NewCond(&l.mu)
	var sector [disk.SectorSize]byte
	if _, err := l.d.Read(l.base, sector[:]); err != nil {
		return nil, fmt.Errorf("wal: reading anchor: %w", err)
	}
	if binary.BigEndian.Uint32(sector[0:4]) != anchorMagic {
		// Fresh region: format an empty log.
		l.lowLSN, l.durableLSN, l.nextLSN = firstLSN, firstLSN, firstLSN
		if err := l.writeAnchor(); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.lowLSN = LSN(binary.BigEndian.Uint64(sector[4:12]))
	l.ckptLSN = LSN(binary.BigEndian.Uint64(sector[12:20]))
	if l.lowLSN == 0 {
		return nil, ErrBadAnchor
	}
	if err := l.recoverEnd(); err != nil {
		return nil, err
	}
	return l, nil
}

// recoverEnd scans forward from lowLSN validating checksums and embedded
// LSNs until the stream stops making sense; that point is the durable end.
//
// Only a decode failure (ErrCorrupt: bad checksum, wrong embedded LSN,
// nonsense length — what stale or torn sectors past the true end look
// like) marks the end of the log. A read that fails at the disk layer is
// a media error on a sector that may hold committed records; treating it
// as end-of-log would silently truncate the log and lose committed
// transactions, so it fails the mount instead.
func (l *Log) recoverEnd() error {
	lsn := l.lowLSN
	l.index = l.index[:0]
	for {
		r, n, err := l.readRecordFromDisk(lsn)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				return fmt.Errorf("wal: finding log end at LSN %d: %w", lsn, err)
			}
			break // end of valid log
		}
		l.index = append(l.index, lsn)
		lsn += LSN(n)
		_ = r
	}
	l.durableLSN = lsn
	l.nextLSN = lsn
	l.buf = nil
	return nil
}

func (l *Log) writeAnchor() error {
	var sector [disk.SectorSize]byte
	binary.BigEndian.PutUint32(sector[0:4], anchorMagic)
	binary.BigEndian.PutUint64(sector[4:12], uint64(l.lowLSN))
	binary.BigEndian.PutUint64(sector[12:20], uint64(l.ckptLSN))
	return l.d.Write(l.base, sector[:], 0)
}

// sectorFor maps a log byte offset to its disk sector and intra-sector
// offset.
func (l *Log) sectorFor(lsn LSN) (disk.Addr, int) {
	byteOff := uint64(lsn)
	sec := (byteOff / disk.SectorSize) % uint64(l.data)
	return l.base + 1 + disk.Addr(sec), int(byteOff % disk.SectorSize)
}

// Capacity returns the byte capacity of the record region.
func (l *Log) Capacity() int64 { return l.data * disk.SectorSize }

// SpaceUsed returns bytes between the low-water mark and the append point.
func (l *Log) SpaceUsed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.nextLSN - l.lowLSN)
}

// SpaceLeft returns the free byte capacity before the log is full.
func (l *Log) SpaceLeft() int64 { return l.Capacity() - l.SpaceUsed() }

// NearlyFull reports whether less than 1/8 of the log space remains; the
// Recovery Manager uses this to trigger reclamation (§3.2.2).
func (l *Log) NearlyFull() bool { return l.SpaceLeft() < l.Capacity()/8 }

// LowLSN returns the oldest retained LSN.
func (l *Log) LowLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lowLSN
}

// DurableLSN returns the LSN up to which the log is on non-volatile
// storage (exclusive).
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// CheckpointLSN returns the LSN of the most recent checkpoint record, or 0.
func (l *Log) CheckpointLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptLSN
}

// Append assigns the next LSN to r, serializes it into the volatile buffer,
// and returns the assigned LSN. The record is not durable until Force. On
// failure r is left exactly as the caller passed it: Encode needs the
// candidate LSN in place (the frame checksum covers it), so it is staged
// and rolled back unless the append commits.
func (l *Log) Append(r *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	prevLSN := r.LSN
	r.LSN = l.nextLSN
	// Encode directly into the tail of the volatile buffer — no per-append
	// frame allocation. Staged bytes are dropped by truncating back to the
	// original length if the append does not commit. Extending l.buf is safe
	// against an in-flight group flush: the leader snapshots a subslice of
	// the pending prefix, which append never mutates (growth reallocates).
	orig := len(l.buf)
	buf, err := AppendEncode(l.buf, r)
	if err != nil {
		r.LSN = prevLSN
		return 0, err
	}
	n := len(buf) - orig
	if int64(l.nextLSN-l.lowLSN)+int64(n) > l.Capacity() {
		r.LSN = prevLSN
		l.buf = buf[:orig]
		return 0, ErrLogFull
	}
	if l.fh != nil {
		if err := l.fh("wal.append"); err != nil {
			r.LSN = prevLSN
			l.buf = buf[:orig]
			return 0, fmt.Errorf("wal: append: %w", err)
		}
	}
	l.buf = buf
	l.index = append(l.index, r.LSN)
	l.nextLSN += LSN(n)
	l.tr.Count("wal.append.records", 1)
	l.tr.Count("wal.append.bytes", float64(n))
	return r.LSN, nil
}

// Force makes every record with LSN < upTo durable. Passing the current
// NextLSN (or any larger value) forces the whole buffer. Each log page
// batch written charges one Stable Storage Write primitive (Table 5-1), so
// N concurrent committers coalesced into one group force share a single
// primitive charge between them.
func (l *Log) Force(upTo LSN) error {
	l.mu.Lock()
	if l.noGroup {
		defer l.mu.Unlock()
		return l.forceLocked(upTo)
	}
	if upTo > l.nextLSN {
		upTo = l.nextLSN
	}
	for {
		if upTo <= l.durableLSN {
			l.mu.Unlock()
			return nil
		}
		if !l.flushing {
			return l.leadFlush() // releases l.mu
		}
		// A leader is already writing. Park until its generation
		// completes; the flush may or may not cover our target (records
		// appended after the leader snapshotted land in the next batch).
		tok := l.parkSeq
		l.parkSeq++
		l.parked[tok] = upTo
		l.tr.Gauge("wal.force.waiters", float64(len(l.parked)))
		gen := l.flushGen
		for l.flushGen == gen {
			l.flushCond.Wait()
		}
		delete(l.parked, tok)
		l.tr.Gauge("wal.force.waiters", float64(len(l.parked)))
		if err := l.flushErr; err != nil && upTo > l.durableLSN {
			// The flush that should have covered us failed; surface the
			// write error rather than silently retrying on the caller's
			// behalf.
			l.mu.Unlock()
			return err
		}
	}
}

// leadFlush runs one group-commit generation. Called with l.mu held and
// l.flushing false; releases the mutex for the duration of the disk write
// so appends (and future forces) proceed while the batch is in flight.
func (l *Log) leadFlush() error {
	start, end := l.durableLSN, l.nextLSN
	// Snapshot the region being flushed. Appends only ever extend l.buf,
	// never mutate the pending prefix, so a subslice stays stable while
	// the mutex is released.
	data := l.buf[:end-start]
	l.flushing = true
	l.mu.Unlock()

	err := l.writeRange(start, end, data)

	l.mu.Lock()
	if err == nil {
		l.durableLSN = end
		// Compact by copying the unflushed tail to the front rather than
		// re-slicing forward: the backing array is reused for future appends
		// instead of being abandoned a prefix at a time, which kept every
		// flushed generation's bytes reachable and forced steady regrowth.
		rest := copy(l.buf, l.buf[end-start:])
		l.buf = l.buf[:rest]
		// The group this write amortized: the leader plus every parked
		// waiter whose target the batch satisfied.
		group := 1
		for _, target := range l.parked {
			if target <= end {
				group++
			}
		}
		l.tr.Observe("wal.force.group_size", float64(group))
	}
	l.flushing = false
	l.flushGen++
	l.flushErr = err
	l.flushCond.Broadcast()
	l.mu.Unlock()
	return err
}

// forceLocked is the synchronous (DisableGroupCommit) force path: one disk
// write per call, performed under the log mutex, exactly as the original
// TABS implementation charged one Stable Storage Write per committing
// transaction. Caller holds l.mu.
func (l *Log) forceLocked(upTo LSN) error {
	if upTo > l.nextLSN {
		upTo = l.nextLSN
	}
	if upTo <= l.durableLSN {
		return nil
	}
	start, end := l.durableLSN, l.nextLSN
	if err := l.writeRange(start, end, l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0] // keep capacity for the next batch of appends
	l.durableLSN = end
	return nil
}

// writeRange writes the log bytes [start, end) — supplied in data — to the
// sectors that cover them. We force the entire pending region once any of
// it must go (a page of log data is the force unit, §5.1). One call is one
// Stable Storage Write primitive — "the elapsed time required for the
// Recovery Manager to force a page of log data to non-volatile storage"
// (§5.1) — regardless of how many sectors the records straddle or how many
// committers share the batch. Safe without l.mu: at most one flusher runs
// at a time (l.flushing, or the mutex itself on the synchronous path), and
// nothing else writes log data sectors.
func (l *Log) writeRange(start, end LSN, data []byte) error {
	forceStart := time.Now()
	sp := l.tr.Begin("wal", "force").Annotatef("bytes=%d", int64(end-start))
	if l.fh != nil {
		if err := l.fh("wal.force"); err != nil {
			err = fmt.Errorf("wal: forcing log page: %w", err)
			sp.EndErr(err)
			return err
		}
	}
	firstSec := uint64(start) / disk.SectorSize
	lastSec := (uint64(end) - 1) / disk.SectorSize
	for sec := firstSec; sec <= lastSec; sec++ {
		var page [disk.SectorSize]byte
		secStart := LSN(sec * disk.SectorSize)
		addr, _ := l.sectorFor(secStart)
		// For the first sector, re-read the already-durable prefix from
		// disk (read-modify-write).
		if secStart < start {
			if _, err := l.d.Read(addr, page[:]); err != nil {
				err = fmt.Errorf("wal: read-modify-write of log page: %w", err)
				sp.EndErr(err)
				return err
			}
		}
		// Fill the page from the overlap of this sector with [start, end).
		lo, hi := secStart, secStart+disk.SectorSize
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		copy(page[lo-secStart:], data[lo-start:hi-start])
		if err := l.d.Write(addr, page[:], 0); err != nil {
			err = fmt.Errorf("wal: forcing log page: %w", err)
			sp.EndErr(err)
			return err
		}
	}
	if l.rec != nil {
		l.rec.Record(simclock.StableWrite)
	}
	l.tr.Count("wal.force.count", 1)
	l.tr.Count("wal.force.bytes", float64(int64(end-start)))
	l.tr.Observe("wal.force.batch_bytes", float64(int64(end-start)))
	l.tr.ObserveSince("wal.force.ms", forceStart)
	sp.End()
	return nil
}

// readBytes returns n bytes starting at lsn, reading from the volatile
// buffer and/or disk as needed. Caller holds l.mu.
func (l *Log) readBytes(lsn LSN, n int) ([]byte, error) {
	if lsn < l.lowLSN || lsn+LSN(n) > l.nextLSN {
		return nil, fmt.Errorf("%w: [%d,%d) retained [%d,%d)", ErrOutOfRange, lsn, lsn+LSN(n), l.lowLSN, l.nextLSN)
	}
	out := make([]byte, n)
	for i := 0; i < n; {
		off := lsn + LSN(i)
		if off >= l.durableLSN {
			// The rest comes from the volatile buffer in one copy.
			i += copy(out[i:], l.buf[off-l.durableLSN:])
			continue
		}
		addr, inSec := l.sectorFor(off)
		var page [disk.SectorSize]byte
		if _, err := l.d.Read(addr, page[:]); err != nil {
			return nil, err
		}
		avail := page[inSec:]
		// Don't copy past the durable boundary into buffer territory.
		if off+LSN(len(avail)) > l.durableLSN {
			avail = avail[:l.durableLSN-off]
		}
		i += copy(out[i:], avail)
	}
	return out, nil
}

// readRecordFromDisk decodes the record at lsn using only durable bytes;
// used while recovering the end of the log, when no buffer exists.
func (l *Log) readRecordFromDisk(lsn LSN) (*Record, int, error) {
	header, err := l.readRawDurable(lsn, 4)
	if err != nil {
		return nil, 0, err
	}
	n := int(binary.BigEndian.Uint32(header))
	if n < headerSize || n > MaxBodySize+headerSize+512 {
		return nil, 0, ErrCorrupt
	}
	frame, err := l.readRawDurable(lsn, 4+n)
	if err != nil {
		return nil, 0, err
	}
	return Decode(frame, lsn)
}

// readRawDurable reads bytes straight off the disk without range checks
// against nextLSN (which is unknown during end recovery).
func (l *Log) readRawDurable(lsn LSN, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; {
		off := lsn + LSN(i)
		addr, inSec := l.sectorFor(off)
		var page [disk.SectorSize]byte
		if _, err := l.d.Read(addr, page[:]); err != nil {
			return nil, err
		}
		i += copy(out[i:], page[inSec:])
	}
	return out, nil
}

// ReadRecord returns the record starting at lsn.
func (l *Log) ReadRecord(lsn LSN) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	header, err := l.readBytes(lsn, 4)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(header))
	frame, err := l.readBytes(lsn, 4+n)
	if err != nil {
		return nil, err
	}
	r, _, err := Decode(frame, lsn)
	return r, err
}

// ScanForward calls fn for every retained record with from ≤ LSN, in LSN
// order, stopping early if fn returns false. Records reclaimed between the
// index snapshot and the per-record read are skipped rather than surfaced
// as ErrOutOfRange: a record below the advanced low-water mark was, by the
// reclamation invariant, needed by no retained transaction.
func (l *Log) ScanForward(from LSN, fn func(*Record) (bool, error)) error {
	for _, lsn := range l.indexFrom(from) {
		r, err := l.ReadRecord(lsn)
		if err != nil {
			if l.reclaimedSince(lsn, err) {
				continue
			}
			return err
		}
		cont, err := fn(r)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// ScanBackward calls fn for every retained record with LSN ≤ from, in
// reverse LSN order, stopping early if fn returns false. Value-logging
// crash recovery is a single backward pass (§2.1.3). Concurrently
// reclaimed records are skipped, as in ScanForward.
func (l *Log) ScanBackward(from LSN, fn func(*Record) (bool, error)) error {
	idx := l.indexUpTo(from)
	for i := len(idx) - 1; i >= 0; i-- {
		r, err := l.ReadRecord(idx[i])
		if err != nil {
			if l.reclaimedSince(idx[i], err) {
				continue
			}
			return err
		}
		cont, err := fn(r)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// reclaimedSince reports whether a per-record read failure during a scan
// is explained by a concurrent Reclaim having trimmed lsn: the read
// range-checks under the mutex, so ErrOutOfRange on an LSN now below the
// low-water mark means the record was reclaimed after the scan snapshotted
// the index, not that the log is corrupt.
func (l *Log) reclaimedSince(lsn LSN, err error) bool {
	return errors.Is(err, ErrOutOfRange) && lsn < l.LowLSN()
}

// indexFrom returns a copy of the tail of the ascending LSN index starting
// at the first entry ≥ from. The index is sorted, so the cut point is a
// binary search; the copy keeps the snapshot stable against a concurrent
// Reclaim compacting the index in place.
func (l *Log) indexFrom(from LSN) []LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.index), func(i int) bool { return l.index[i] >= from })
	return append([]LSN(nil), l.index[i:]...)
}

// indexUpTo returns a copy of the head of the index: every entry ≤ from.
func (l *Log) indexUpTo(from LSN) []LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.index), func(i int) bool { return l.index[i] > from })
	return append([]LSN(nil), l.index[:i]...)
}

// SetCheckpoint records lsn as the most recent checkpoint and durably
// updates the anchor. The checkpoint record itself must already be forced.
func (l *Log) SetCheckpoint(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn >= l.durableLSN {
		return fmt.Errorf("wal: checkpoint LSN %d not durable (durable=%d)", lsn, l.durableLSN)
	}
	l.ckptLSN = lsn
	return l.writeAnchor()
}

// Reclaim advances the low-water mark to newLow, releasing log space. The
// caller (the Recovery Manager's reclamation algorithm, §3.2.2) must ensure
// no retained transaction or dirty page needs records below newLow.
func (l *Log) Reclaim(newLow LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if newLow < l.lowLSN {
		return nil
	}
	if newLow > l.durableLSN {
		return fmt.Errorf("wal: cannot reclaim past durable LSN %d", l.durableLSN)
	}
	// newLow must be a record boundary (or the exact end).
	i := sort.Search(len(l.index), func(i int) bool { return l.index[i] >= newLow })
	if newLow != l.nextLSN && (i == len(l.index) || l.index[i] != newLow) {
		return fmt.Errorf("wal: reclaim target %d is not a record boundary", newLow)
	}
	l.lowLSN = newLow
	l.index = append(l.index[:0], l.index[i:]...)
	return l.writeAnchor()
}

// AppendAndForce is the common "write a record and make it durable" path
// used by commit processing. Under group commit, concurrent callers
// coalesce: each appends its record, then the force either leads one batch
// covering every pending record or rides a batch another committer pays
// for.
func (l *Log) AppendAndForce(r *Record) (LSN, error) {
	lsn, err := l.Append(r)
	if err != nil {
		return 0, err
	}
	if err := l.Force(lsn + 1); err != nil {
		return 0, err
	}
	return lsn, nil
}

// TransBackChain walks the backward chain of records written by one
// transaction, starting at lastLSN, calling fn newest-first. This is the
// path abort processing follows (§3.2.2).
func (l *Log) TransBackChain(lastLSN LSN, fn func(*Record) (bool, error)) error {
	for lsn := lastLSN; lsn != NilLSN; {
		r, err := l.ReadRecord(lsn)
		if err != nil {
			return err
		}
		cont, err := fn(r)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		lsn = r.PrevLSN
	}
	return nil
}
