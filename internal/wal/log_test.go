package wal

import (
	"errors"
	"fmt"
	"testing"

	"tabs/internal/disk"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/types"
)

func testLog(t *testing.T, sectors int64) (*Log, *disk.Disk, *stats.Recorder) {
	t.Helper()
	d := disk.New(disk.DefaultGeometry(sectors + 16))
	rec := stats.NewRecorder()
	lg, err := Open(Config{Disk: d, Base: 0, Sectors: sectors, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	return lg, d, rec
}

func tid(seq uint64) types.TransID {
	return types.TransID{Node: "n", Seq: seq, RootNode: "n", RootSeq: seq}
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	lg, _, _ := testLog(t, 64)
	var last LSN
	for i := 1; i <= 20; i++ {
		lsn, err := lg.Append(&Record{TID: tid(uint64(i)), Type: RecCommit})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= last {
			t.Fatalf("LSN %d not greater than %d", lsn, last)
		}
		last = lsn
	}
}

func TestReadBeforeAndAfterForce(t *testing.T) {
	lg, _, _ := testLog(t, 64)
	lsn, err := lg.Append(&Record{TID: tid(1), Type: RecUpdate, Server: "s", Body: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	// Readable from the volatile buffer.
	r, err := lg.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "abc" {
		t.Errorf("body %q", r.Body)
	}
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	// Readable from disk.
	r, err = lg.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "abc" {
		t.Errorf("after force: body %q", r.Body)
	}
}

func TestForceChargesOneStableWrite(t *testing.T) {
	lg, _, rec := testLog(t, 64)
	for i := 1; i <= 3; i++ {
		if _, err := lg.Append(&Record{TID: tid(uint64(i)), Type: RecCommit}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot(stats.PreCommit)[simclock.StableWrite]; got != 1 {
		t.Errorf("one force should charge 1 stable write, got %g", got)
	}
	// Forcing an already durable log charges nothing.
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot(stats.PreCommit)[simclock.StableWrite]; got != 1 {
		t.Errorf("idempotent force charged: %g", got)
	}
}

func TestRecoverEndAfterReopen(t *testing.T) {
	lg, d, _ := testLog(t, 64)
	var lsns []LSN
	for i := 1; i <= 10; i++ {
		lsn, err := lg.Append(&Record{TID: tid(uint64(i)), Type: RecUpdate, Server: "s", Body: []byte(fmt.Sprintf("rec%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	// Force only the first half; the rest dies with the "crash".
	if err := lg.Force(lsns[5]); err != nil {
		t.Fatal(err)
	}
	durable := lg.DurableLSN()

	lg2, err := Open(Config{Disk: d, Base: 0, Sectors: 64})
	if err != nil {
		t.Fatal(err)
	}
	if lg2.NextLSN() != durable {
		t.Errorf("recovered end %d, want %d", lg2.NextLSN(), durable)
	}
	count := 0
	if err := lg2.ScanForward(0, func(r *Record) (bool, error) {
		count++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Everything below the durable boundary survives; nothing above.
	want := 0
	for _, l := range lsns {
		if l < durable {
			want++
		}
	}
	if count != want {
		t.Errorf("recovered %d records, want %d", count, want)
	}
}

func TestScanBackwardOrder(t *testing.T) {
	lg, _, _ := testLog(t, 64)
	for i := 1; i <= 5; i++ {
		if _, err := lg.Append(&Record{TID: tid(uint64(i)), Type: RecCommit}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	if err := lg.ScanBackward(lg.NextLSN(), func(r *Record) (bool, error) {
		seen = append(seen, r.TID.Seq)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(seen)-1; i++ {
		if seen[i] <= seen[i+1] {
			t.Fatalf("backward scan not newest-first: %v", seen)
		}
	}
}

func TestTransBackChain(t *testing.T) {
	lg, _, _ := testLog(t, 64)
	var last LSN
	// Interleave two transactions; follow only t1's chain.
	for i := 0; i < 6; i++ {
		tr := tid(1)
		prev := last
		if i%2 == 1 {
			tr = tid(2)
			prev = NilLSN // t2 records not chained for this test
		}
		r := &Record{TID: tr, Type: RecUpdate, Server: "s", Body: []byte{byte(i)}}
		lsn, err := lg.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		// Manually maintain t1's chain through PrevLSN.
		if i%2 == 0 {
			_ = prev
			last = lsn
		}
	}
	// Re-append a clean chain (the loop above can't set PrevLSN before
	// Append assigns LSNs, so build the chain explicitly).
	lg2, _, _ := testLog(t, 64)
	var chain []LSN
	prev := NilLSN
	for i := 0; i < 4; i++ {
		r := &Record{TID: tid(1), Type: RecUpdate, PrevLSN: prev, Server: "s", Body: []byte{byte(i)}}
		lsn, err := lg2.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, lsn)
		prev = lsn
	}
	var visited []LSN
	if err := lg2.TransBackChain(prev, func(r *Record) (bool, error) {
		visited = append(visited, r.LSN)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 4 {
		t.Fatalf("visited %d records, want 4", len(visited))
	}
	for i := range visited {
		if visited[i] != chain[len(chain)-1-i] {
			t.Fatalf("chain order wrong: %v vs %v", visited, chain)
		}
	}
}

func TestLogFullAndReclaim(t *testing.T) {
	lg, _, _ := testLog(t, 4) // tiny: 3 data sectors = 1536 bytes
	var lsns []LSN
	for {
		lsn, err := lg.Append(&Record{TID: tid(1), Type: RecUpdate, Server: "s", Body: make([]byte, 100)})
		if errors.Is(err, ErrLogFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if len(lsns) < 2 {
		t.Fatalf("expected several records before full, got %d", len(lsns))
	}
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	// Reclaim everything up to the last record; space opens up.
	if err := lg.Reclaim(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(&Record{TID: tid(2), Type: RecUpdate, Server: "s", Body: make([]byte, 100)}); err != nil {
		t.Fatalf("append after reclaim: %v", err)
	}
}

func TestReclaimRejectsNonBoundary(t *testing.T) {
	lg, _, _ := testLog(t, 64)
	lsn, err := lg.Append(&Record{TID: tid(1), Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if err := lg.Reclaim(lsn + 1); err == nil {
		t.Error("reclaim to a mid-record LSN accepted")
	}
}

func TestWrapAroundAfterReclaim(t *testing.T) {
	lg, d, _ := testLog(t, 6)
	// Fill, reclaim, fill again several times: the circular mapping must
	// keep records readable and reopening must find the right end.
	for cycle := 0; cycle < 6; cycle++ {
		var last LSN
		for {
			lsn, err := lg.Append(&Record{TID: tid(uint64(cycle)), Type: RecUpdate, Server: "s", Body: make([]byte, 64)})
			if errors.Is(err, ErrLogFull) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			last = lsn
		}
		if err := lg.Force(lg.NextLSN()); err != nil {
			t.Fatal(err)
		}
		if err := lg.Reclaim(last); err != nil {
			t.Fatal(err)
		}
		// The retained tail must still decode.
		r, err := lg.ReadRecord(last)
		if err != nil {
			t.Fatalf("cycle %d: reading retained record: %v", cycle, err)
		}
		if r.TID.Seq != uint64(cycle) {
			t.Fatalf("cycle %d: wrong record %v", cycle, r.TID)
		}
	}
	// Reopen: end recovery must stop at the true end despite old data
	// beyond it in the circular region.
	lg2, err := Open(Config{Disk: d, Base: 0, Sectors: 6})
	if err != nil {
		t.Fatal(err)
	}
	if lg2.NextLSN() != lg.DurableLSN() {
		t.Errorf("reopened end %d, want %d", lg2.NextLSN(), lg.DurableLSN())
	}
}

func TestCheckpointAnchorPersists(t *testing.T) {
	lg, d, _ := testLog(t, 64)
	lsn, err := lg.AppendAndForce(&Record{Type: RecCheckpoint, Body: EncodeCheckpoint(&CheckpointBody{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.SetCheckpoint(lsn); err != nil {
		t.Fatal(err)
	}
	lg2, err := Open(Config{Disk: d, Base: 0, Sectors: 64})
	if err != nil {
		t.Fatal(err)
	}
	if lg2.CheckpointLSN() != lsn {
		t.Errorf("checkpoint LSN %d, want %d", lg2.CheckpointLSN(), lsn)
	}
}

func TestSetCheckpointRequiresDurable(t *testing.T) {
	lg, _, _ := testLog(t, 64)
	lsn, err := lg.Append(&Record{Type: RecCheckpoint, Body: EncodeCheckpoint(&CheckpointBody{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.SetCheckpoint(lsn); err == nil {
		t.Error("checkpoint anchor accepted before the record was forced")
	}
}

// TestFailedAppendLeavesRecordUntouched is the regression test for the
// stale-LSN bug: Append used to assign r.LSN before the encode and
// space checks, so a failed append left a bogus LSN on the caller's
// record — which a retry after reclamation would then chain from.
func TestFailedAppendLeavesRecordUntouched(t *testing.T) {
	lg, _, _ := testLog(t, 4)

	// Encode failure: oversized body.
	r := &Record{LSN: 42, TID: tid(1), Type: RecUpdate, Server: "s", Body: make([]byte, MaxBodySize+1)}
	if _, err := lg.Append(r); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if r.LSN != 42 {
		t.Errorf("encode failure mutated r.LSN: %d, want 42", r.LSN)
	}

	// Space failure: fill the tiny log until it rejects an append.
	body := make([]byte, 256)
	for i := 0; ; i++ {
		r := &Record{LSN: 7, TID: tid(uint64(i + 2)), Type: RecUpdate, Server: "s", Body: body}
		_, err := lg.Append(r)
		if err == nil {
			if r.LSN == 7 {
				t.Fatal("successful append did not assign an LSN")
			}
			continue
		}
		if !errors.Is(err, ErrLogFull) {
			t.Fatalf("want ErrLogFull, got %v", err)
		}
		if r.LSN != 7 {
			t.Errorf("full-log failure mutated r.LSN: %d, want 7", r.LSN)
		}
		break
	}
}

// TestConcurrentScanVsReclaim is the regression test for the scan TOCTOU:
// scans snapshot the LSN index under the mutex but read each record
// afterwards, so a concurrent Reclaim used to surface spurious
// ErrOutOfRange from records trimmed mid-scan. Reclaimed records must be
// skipped instead.
func TestConcurrentScanVsReclaim(t *testing.T) {
	lg, _, _ := testLog(t, 256)

	var lsns []LSN
	for i := 0; i < 200; i++ {
		lsn, err := lg.Append(&Record{TID: tid(uint64(i + 1)), Type: RecUpdate, Server: "s", Body: []byte("payload")})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := lg.Force(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	scanErr := make(chan error, 1)
	go func() {
		defer close(done)
		for {
			select {
			case <-scanErr:
				return
			default:
			}
			if err := lg.ScanForward(firstLSN, func(*Record) (bool, error) { return true, nil }); err != nil {
				scanErr <- err
				return
			}
			if err := lg.ScanBackward(lg.NextLSN(), func(*Record) (bool, error) { return true, nil }); err != nil {
				scanErr <- err
				return
			}
			if lg.LowLSN() == lg.NextLSN() {
				return // everything reclaimed; nothing left to race with
			}
		}
	}()

	for _, lsn := range lsns[1:] {
		if err := lg.Reclaim(lsn); err != nil {
			t.Fatalf("reclaim to %d: %v", lsn, err)
		}
	}
	if err := lg.Reclaim(lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	<-done
	select {
	case err := <-scanErr:
		t.Fatalf("scan failed against concurrent reclaim: %v", err)
	default:
	}
}
