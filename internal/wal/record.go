// Package wal implements the common write-ahead log shared by every data
// server and system component on a TABS node (paper §2.1.3, §3.2.2).
//
// The log is an append-only sequence of records in stable storage. Records
// carry undo and redo components; value-logging records hold old and new
// byte values of at most one page, operation-logging records hold the names
// and arguments of operations to re-invoke. Transaction management records
// (commit, abort, prepare) and checkpoint records share the same log, which
// the paper calls out as a deliberate design choice ("a common log",
// §2.1.4, §7).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"tabs/internal/types"
)

// LSN is a log sequence number: a monotonically increasing byte offset into
// the conceptually infinite log stream. The physical log is a circular
// region of the disk; reclamation (§3.2.2) advances the low-water mark.
type LSN uint64

// NilLSN marks the absence of a predecessor record.
const NilLSN LSN = 0

// RecordType discriminates log record bodies.
type RecordType uint8

// Log record types. Update and Operation are written by data servers via
// the server library; the rest by the Recovery and Transaction Managers.
const (
	RecInvalid      RecordType = iota
	RecUpdate                  // value logging: old/new value of ≤ one page (§2.1.3)
	RecOperation               // operation logging: redo/undo operation descriptors
	RecCommit                  // transaction (or top-level tree) committed
	RecAbort                   // transaction aborted
	RecPrepare                 // participant prepared in 2PC, effects must persist
	RecCheckpoint              // periodic checkpoint: dirty pages + active transactions
	RecUpdateCLR               // compensation for an undone value record
	RecOperationCLR            // compensation for an undone operation record
	RecACP                     // acp acceptor state (promise/accept/decide), body owned by internal/acp
)

// String returns the record type name.
func (t RecordType) String() string {
	switch t {
	case RecUpdate:
		return "update"
	case RecOperation:
		return "operation"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecPrepare:
		return "prepare"
	case RecCheckpoint:
		return "checkpoint"
	case RecUpdateCLR:
		return "update-clr"
	case RecOperationCLR:
		return "operation-clr"
	case RecACP:
		return "acp"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one log record. Records written by the same transaction are
// chained backward through PrevLSN so abort processing can follow the chain
// without scanning (§3.2.2).
type Record struct {
	LSN     LSN            // assigned at append
	PrevLSN LSN            // previous record of the same transaction, or NilLSN
	TID     types.TransID  // owning transaction (zero for checkpoints)
	Type    RecordType     // body discriminator
	Server  types.ServerID // data server that wrote it (update/operation records)
	Body    []byte         // type-specific encoded payload
}

// Codec errors.
var (
	ErrCorrupt  = errors.New("wal: corrupt record")
	ErrTooLarge = errors.New("wal: record exceeds maximum size")
)

// MaxBodySize bounds a record body. A value record holds at most one page
// of old and one page of new value plus headers, comfortably under 2 pages.
const MaxBodySize = 4 * types.PageSize

const headerSize = 8 + 8 + 8 + 8 + 1 + 3*2 + 4 + 4 // lsn, prev, seq, rootSeq, type, 3 name lens, body len, crc

// encodedSize returns the on-log size of r.
func encodedSize(r *Record) int {
	return headerSize + len(r.TID.Node) + len(r.TID.RootNode) + len(r.Server) + len(r.Body)
}

// appendString writes a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// AppendEncode serializes r as one length-prefixed frame appended to dst
// and returns the extended slice. The frame is a 4-byte big-endian total
// length, the record fields, and a CRC32 over everything between the length
// prefix and the checksum itself, so crash recovery can find the end of the
// log by scanning until a bad checksum. The length prefix is reserved up
// front and patched once the payload size is known: the whole frame is
// built in the caller's buffer with no intermediate allocation. (The
// original Encode built the payload in one buffer, then allocated a second
// just to prepend the frame length — two allocations per record on the
// append hot path.)
//
// On a validation error dst is returned unchanged; nothing is appended.
func AppendEncode(dst []byte, r *Record) ([]byte, error) {
	if len(r.Body) > MaxBodySize {
		return dst, fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(r.Body))
	}
	if len(r.TID.Node) > 255 || len(r.TID.RootNode) > 255 || len(r.Server) > 255 {
		return dst, fmt.Errorf("%w: name too long", ErrTooLarge)
	}
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // frame length, patched below
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.LSN))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.PrevLSN))
	dst = binary.BigEndian.AppendUint64(dst, r.TID.Seq)
	dst = binary.BigEndian.AppendUint64(dst, r.TID.RootSeq)
	dst = append(dst, byte(r.Type))
	dst = appendString(dst, string(r.TID.Node))
	dst = appendString(dst, string(r.TID.RootNode))
	dst = appendString(dst, string(r.Server))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Body)))
	dst = append(dst, r.Body...)
	crc := crc32.ChecksumIEEE(dst[base+4:])
	dst = binary.BigEndian.AppendUint32(dst, crc)
	binary.BigEndian.PutUint32(dst[base:], uint32(len(dst)-base-4))
	return dst, nil
}

// Encode serializes r into a freshly allocated framed buffer. Hot paths
// that own a reusable buffer should call AppendEncode instead.
func Encode(r *Record) ([]byte, error) {
	buf, err := AppendEncode(make([]byte, 0, 4+encodedSize(r)), r)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Decode parses one framed record from b, returning the record and the
// number of bytes consumed. It validates the checksum and, if expectLSN is
// nonzero, that the embedded LSN matches — which rejects stale data left
// from a previous cycle of the circular log.
func Decode(b []byte, expectLSN LSN) (*Record, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < headerSize || n > MaxBodySize+headerSize+512 || len(b) < 4+n {
		return nil, 0, fmt.Errorf("%w: bad frame length %d", ErrCorrupt, n)
	}
	payload := b[4 : 4+n]
	body, crcBytes := payload[:n-4], payload[n-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(crcBytes) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &Record{}
	r.LSN = LSN(binary.BigEndian.Uint64(body[0:8]))
	r.PrevLSN = LSN(binary.BigEndian.Uint64(body[8:16]))
	r.TID.Seq = binary.BigEndian.Uint64(body[16:24])
	r.TID.RootSeq = binary.BigEndian.Uint64(body[24:32])
	r.Type = RecordType(body[32])
	rest := body[33:]
	node, rest, err := takeString(rest)
	if err != nil {
		return nil, 0, err
	}
	rootNode, rest, err := takeString(rest)
	if err != nil {
		return nil, 0, err
	}
	server, rest, err := takeString(rest)
	if err != nil {
		return nil, 0, err
	}
	// Mirror Encode's limits so every record that decodes also re-encodes.
	if len(node) > 255 || len(rootNode) > 255 || len(server) > 255 {
		return nil, 0, fmt.Errorf("%w: name too long", ErrCorrupt)
	}
	r.TID.Node = types.NodeID(node)
	r.TID.RootNode = types.NodeID(rootNode)
	r.Server = types.ServerID(server)
	if len(rest) < 4 {
		return nil, 0, fmt.Errorf("%w: truncated body length", ErrCorrupt)
	}
	bl := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if bl > MaxBodySize {
		return nil, 0, fmt.Errorf("%w: body %d bytes", ErrCorrupt, bl)
	}
	if len(rest) != bl {
		return nil, 0, fmt.Errorf("%w: body length %d, have %d", ErrCorrupt, bl, len(rest))
	}
	if bl > 0 {
		r.Body = append([]byte(nil), rest...)
	}
	if expectLSN != 0 && r.LSN != expectLSN {
		return nil, 0, fmt.Errorf("%w: LSN %d where %d expected (stale log area)", ErrCorrupt, r.LSN, expectLSN)
	}
	return r, 4 + n, nil
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("%w: truncated string", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("%w: truncated string body", ErrCorrupt)
	}
	return string(b[:n]), b[n:], nil
}

// --- Typed record bodies -------------------------------------------------

// UpdateBody is the body of a value-logging record: the old and new values
// of one object, at most a page each (§2.1.3). During recovery the single
// backward pass resets uncommitted objects to their old values; redo of
// committed transactions reapplies new values.
type UpdateBody struct {
	Object types.ObjectID
	Old    []byte
	New    []byte
}

// EncodeUpdate serializes an update body.
func EncodeUpdate(u *UpdateBody) []byte {
	b := make([]byte, 0, 16+len(u.Old)+len(u.New)+8)
	b = binary.BigEndian.AppendUint32(b, uint32(u.Object.Segment))
	b = binary.BigEndian.AppendUint32(b, u.Object.Offset)
	b = binary.BigEndian.AppendUint32(b, u.Object.Length)
	b = binary.BigEndian.AppendUint32(b, uint32(len(u.Old)))
	b = append(b, u.Old...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(u.New)))
	b = append(b, u.New...)
	return b
}

// DecodeUpdate parses an update body.
func DecodeUpdate(b []byte) (*UpdateBody, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("%w: short update body", ErrCorrupt)
	}
	u := &UpdateBody{}
	u.Object.Segment = types.SegmentID(binary.BigEndian.Uint32(b[0:4]))
	u.Object.Offset = binary.BigEndian.Uint32(b[4:8])
	u.Object.Length = binary.BigEndian.Uint32(b[8:12])
	oldLen := int(binary.BigEndian.Uint32(b[12:16]))
	rest := b[16:]
	if len(rest) < oldLen+4 {
		return nil, fmt.Errorf("%w: truncated old value", ErrCorrupt)
	}
	u.Old = append([]byte(nil), rest[:oldLen]...)
	rest = rest[oldLen:]
	newLen := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != newLen {
		return nil, fmt.Errorf("%w: truncated new value", ErrCorrupt)
	}
	u.New = append([]byte(nil), rest...)
	return u, nil
}

// OperationBody is the body of an operation-logging record (§2.1.3): the
// operation name with arguments sufficient to redo or undo it, plus the
// pages the operation touched and the sequence number each page will carry
// once this operation's effect reaches non-volatile storage. Recovery
// compares logged sequence numbers with the numbers in the on-disk sector
// headers to decide whether a redo is required (§3.2.1).
type OperationBody struct {
	Op       string
	RedoArgs []byte
	UndoArgs []byte
	Pages    []PageSeq
}

// PageSeq pairs a page with the sequence number recorded for it.
type PageSeq struct {
	Page types.PageID
	Seq  uint64
}

// EncodeOperation serializes an operation body.
func EncodeOperation(o *OperationBody) []byte {
	b := make([]byte, 0, 32+len(o.Op)+len(o.RedoArgs)+len(o.UndoArgs)+16*len(o.Pages))
	b = appendString(b, o.Op)
	b = binary.BigEndian.AppendUint32(b, uint32(len(o.RedoArgs)))
	b = append(b, o.RedoArgs...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(o.UndoArgs)))
	b = append(b, o.UndoArgs...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(o.Pages)))
	for _, p := range o.Pages {
		b = binary.BigEndian.AppendUint32(b, uint32(p.Page.Segment))
		b = binary.BigEndian.AppendUint32(b, p.Page.Page)
		b = binary.BigEndian.AppendUint64(b, p.Seq)
	}
	return b
}

// DecodeOperation parses an operation body.
func DecodeOperation(b []byte) (*OperationBody, error) {
	o := &OperationBody{}
	var err error
	o.Op, b, err = takeString(b)
	if err != nil {
		return nil, err
	}
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: truncated operation args", ErrCorrupt)
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < n {
			return nil, fmt.Errorf("%w: truncated operation args", ErrCorrupt)
		}
		out := append([]byte(nil), b[:n]...)
		b = b[n:]
		return out, nil
	}
	if o.RedoArgs, err = take(); err != nil {
		return nil, err
	}
	if o.UndoArgs, err = take(); err != nil {
		return nil, err
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: truncated page list", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != 16*n {
		return nil, fmt.Errorf("%w: page list length", ErrCorrupt)
	}
	o.Pages = make([]PageSeq, n)
	for i := 0; i < n; i++ {
		o.Pages[i].Page.Segment = types.SegmentID(binary.BigEndian.Uint32(b[0:4]))
		o.Pages[i].Page.Page = binary.BigEndian.Uint32(b[4:8])
		o.Pages[i].Seq = binary.BigEndian.Uint64(b[8:16])
		b = b[16:]
	}
	return o, nil
}

// CheckpointBody is the body of a checkpoint record (§2.1.3, §3.2.2): the
// pages currently dirty in volatile storage (with the LSN of the earliest
// unapplied change, bounding how far back redo must scan) and the status of
// currently active transactions.
type CheckpointBody struct {
	DirtyPages []DirtyPage
	Active     []ActiveTrans
	// ACP is an opaque snapshot of commit-protocol acceptor state (encoded
	// and decoded by internal/acp). Including it here lets a checkpoint
	// truncate RecACP records the same way it truncates update records:
	// restart seeds acceptor state from the checkpoint, then replays any
	// later RecACP records over it.
	ACP []byte
}

// DirtyPage records one dirty buffer page at checkpoint time.
type DirtyPage struct {
	Page   types.PageID
	RecLSN LSN // earliest log record whose effect may not be on disk
}

// ActiveTrans records one live transaction at checkpoint time.
type ActiveTrans struct {
	TID      types.TransID
	Status   types.Status
	LastLSN  LSN
	FirstLSN LSN
}

// EncodeCheckpoint serializes a checkpoint body.
func EncodeCheckpoint(c *CheckpointBody) []byte {
	b := make([]byte, 0, 8+16*len(c.DirtyPages)+64*len(c.Active))
	b = binary.BigEndian.AppendUint32(b, uint32(len(c.DirtyPages)))
	for _, d := range c.DirtyPages {
		b = binary.BigEndian.AppendUint32(b, uint32(d.Page.Segment))
		b = binary.BigEndian.AppendUint32(b, d.Page.Page)
		b = binary.BigEndian.AppendUint64(b, uint64(d.RecLSN))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(c.Active)))
	for _, a := range c.Active {
		b = appendString(b, string(a.TID.Node))
		b = appendString(b, string(a.TID.RootNode))
		b = binary.BigEndian.AppendUint64(b, a.TID.Seq)
		b = binary.BigEndian.AppendUint64(b, a.TID.RootSeq)
		b = append(b, byte(a.Status))
		b = binary.BigEndian.AppendUint64(b, uint64(a.LastLSN))
		b = binary.BigEndian.AppendUint64(b, uint64(a.FirstLSN))
	}
	// The ACP tail is appended only when non-empty: checkpoints written
	// before the acp subsystem existed have no tail, and emitting none for
	// an empty blob keeps those old records and new ACP-free records
	// byte-identical (one canonical encoding per body, which the fuzz
	// round-trip invariant relies on).
	if len(c.ACP) > 0 {
		b = binary.BigEndian.AppendUint32(b, uint32(len(c.ACP)))
		b = append(b, c.ACP...)
	}
	return b
}

// DecodeCheckpoint parses a checkpoint body.
func DecodeCheckpoint(b []byte) (*CheckpointBody, error) {
	c := &CheckpointBody{}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short checkpoint", ErrCorrupt)
	}
	nd := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < 16*nd {
		return nil, fmt.Errorf("%w: checkpoint dirty pages", ErrCorrupt)
	}
	c.DirtyPages = make([]DirtyPage, nd)
	for i := 0; i < nd; i++ {
		c.DirtyPages[i].Page.Segment = types.SegmentID(binary.BigEndian.Uint32(b[0:4]))
		c.DirtyPages[i].Page.Page = binary.BigEndian.Uint32(b[4:8])
		c.DirtyPages[i].RecLSN = LSN(binary.BigEndian.Uint64(b[8:16]))
		b = b[16:]
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: checkpoint active list", ErrCorrupt)
	}
	na := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	// Each active entry is at least 37 bytes (two empty length-prefixed
	// names plus the fixed fields); validate the count against the bytes
	// actually present before allocating, so a corrupt count cannot force
	// a multi-gigabyte allocation.
	if len(b) < 37*na {
		return nil, fmt.Errorf("%w: checkpoint active count %d", ErrCorrupt, na)
	}
	c.Active = make([]ActiveTrans, na)
	for i := 0; i < na; i++ {
		node, rest, err := takeString(b)
		if err != nil {
			return nil, err
		}
		rootNode, rest, err := takeString(rest)
		if err != nil {
			return nil, err
		}
		b = rest
		if len(b) < 8+8+1+8+8 {
			return nil, fmt.Errorf("%w: checkpoint active entry", ErrCorrupt)
		}
		c.Active[i].TID.Node = types.NodeID(node)
		c.Active[i].TID.RootNode = types.NodeID(rootNode)
		c.Active[i].TID.Seq = binary.BigEndian.Uint64(b[0:8])
		c.Active[i].TID.RootSeq = binary.BigEndian.Uint64(b[8:16])
		c.Active[i].Status = types.Status(b[16])
		c.Active[i].LastLSN = LSN(binary.BigEndian.Uint64(b[17:25]))
		c.Active[i].FirstLSN = LSN(binary.BigEndian.Uint64(b[25:33]))
		b = b[33:]
	}
	// No trailing bytes: a checkpoint from before the acp subsystem, or one
	// with no acceptor state — both decode to an empty ACP blob.
	if len(b) == 0 {
		return c, nil
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: checkpoint acp length", ErrCorrupt)
	}
	nb := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) != nb {
		return nil, fmt.Errorf("%w: checkpoint acp blob %d bytes, have %d", ErrCorrupt, nb, len(b))
	}
	if nb == 0 {
		// An empty blob is encoded by omitting the tail entirely; a present
		// zero-length tail is not a canonical encoding.
		return nil, fmt.Errorf("%w: checkpoint empty acp tail", ErrCorrupt)
	}
	c.ACP = append([]byte(nil), b...)
	return c, nil
}

// CLRBody wraps a compensation log record: the LSN of the record whose
// undo it records, plus the inner body (an UpdateBody with old/new swapped,
// or an OperationBody whose redo arguments are the original's undo
// arguments). CLRs let crash recovery "repeat history" — the redo pass
// replays them like ordinary records, and the undo pass skips both the CLR
// and the record it compensates, so no effect is ever undone twice.
type CLRBody struct {
	CompLSN LSN
	Inner   []byte
}

// EncodeCLR serializes a compensation wrapper.
func EncodeCLR(c *CLRBody) []byte {
	b := binary.BigEndian.AppendUint64(make([]byte, 0, 8+len(c.Inner)), uint64(c.CompLSN))
	return append(b, c.Inner...)
}

// DecodeCLR parses a compensation wrapper.
func DecodeCLR(b []byte) (*CLRBody, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: short CLR", ErrCorrupt)
	}
	return &CLRBody{
		CompLSN: LSN(binary.BigEndian.Uint64(b[:8])),
		Inner:   append([]byte(nil), b[8:]...),
	}, nil
}

// PrepareBody is the body of a 2PC prepare record: enough information for
// restart to resolve an in-doubt transaction — the parent (coordinator)
// node to ask, and the children this node coordinates in the spanning tree
// (§3.2.3).
type PrepareBody struct {
	Parent   types.NodeID
	Children []types.NodeID
	// Acceptors is the commit-protocol replica set for this transaction.
	// Empty under plain 2PC (resolution = ask the parent); non-empty under
	// Paxos Commit, where restart resolves in-doubt transactions against a
	// quorum of these nodes instead of waiting for the coordinator.
	Acceptors []types.NodeID
}

// EncodePrepare serializes a prepare body.
func EncodePrepare(p *PrepareBody) []byte {
	b := appendString(nil, string(p.Parent))
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Children)))
	for _, c := range p.Children {
		b = appendString(b, string(c))
	}
	// The acceptor tail is appended only when non-empty, so plain-2PC
	// prepare records are byte-identical to the pre-acp format and old logs
	// (which have no tail at all) still decode.
	if len(p.Acceptors) > 0 {
		b = binary.BigEndian.AppendUint16(b, uint16(len(p.Acceptors)))
		for _, a := range p.Acceptors {
			b = appendString(b, string(a))
		}
	}
	return b
}

// DecodePrepare parses a prepare body.
func DecodePrepare(b []byte) (*PrepareBody, error) {
	p := &PrepareBody{}
	parent, b, err := takeString(b)
	if err != nil {
		return nil, err
	}
	p.Parent = types.NodeID(parent)
	takeNames := func(what string) ([]types.NodeID, error) {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: prepare %s", ErrCorrupt, what)
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		out := make([]types.NodeID, 0, n)
		for i := 0; i < n; i++ {
			var c string
			c, b, err = takeString(b)
			if err != nil {
				return nil, err
			}
			out = append(out, types.NodeID(c))
		}
		return out, nil
	}
	if p.Children, err = takeNames("children"); err != nil {
		return nil, err
	}
	// No trailing bytes: a prepare record written under plain 2PC (or by a
	// pre-acp version of this code) — no acceptor set.
	if len(b) == 0 {
		return p, nil
	}
	if p.Acceptors, err = takeNames("acceptors"); err != nil {
		return nil, err
	}
	if len(p.Acceptors) == 0 {
		// An empty set is encoded by omitting the tail entirely; a present
		// zero-count tail is not a canonical encoding.
		return nil, fmt.Errorf("%w: prepare empty acceptor tail", ErrCorrupt)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: prepare trailing bytes", ErrCorrupt)
	}
	return p, nil
}
