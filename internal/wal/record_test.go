package wal

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tabs/internal/types"
)

func sampleTID() types.TransID {
	return types.TransID{Node: "nodeA", Seq: 7, RootNode: "nodeB", RootSeq: 3}
}

func TestRecordRoundTrip(t *testing.T) {
	r := &Record{
		LSN:     1234,
		PrevLSN: 567,
		TID:     sampleTID(),
		Type:    RecUpdate,
		Server:  "array",
		Body:    []byte("hello log"),
	}
	frame, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(frame, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Errorf("consumed %d of %d bytes", n, len(frame))
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", r, got)
	}
}

func TestRecordRoundTripEmptyBody(t *testing.T) {
	r := &Record{LSN: 1, TID: sampleTID(), Type: RecCommit}
	frame, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != RecCommit || len(got.Body) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := &Record{LSN: 9, TID: sampleTID(), Type: RecUpdate, Body: []byte("payload")}
	frame, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position one at a time; every flip must be caught
	// (checksum) or produce a structurally invalid record, never a wrong
	// record accepted silently.
	for i := 4; i < len(frame); i++ { // frame length prefix flips change framing; start past it
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xFF
		got, _, err := Decode(bad, 9)
		if err == nil && reflect.DeepEqual(got, r) {
			continue // flip didn't change decoded content? impossible with checksum
		}
		if err == nil {
			t.Errorf("flip at %d accepted a corrupt record: %+v", i, got)
		}
	}
}

func TestDecodeRejectsStaleLSN(t *testing.T) {
	r := &Record{LSN: 500, TID: sampleTID(), Type: RecCommit}
	frame, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(frame, 9999); err == nil {
		t.Error("record with mismatched LSN accepted (stale circular-log data)")
	}
}

func TestRecordTooLarge(t *testing.T) {
	r := &Record{TID: sampleTID(), Type: RecUpdate, Body: make([]byte, MaxBodySize+1)}
	if _, err := Encode(r); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestUpdateBodyRoundTripQuick(t *testing.T) {
	f := func(seg uint32, off, length uint32, old, new []byte) bool {
		if len(old) > types.PageSize {
			old = old[:types.PageSize]
		}
		if len(new) > types.PageSize {
			new = new[:types.PageSize]
		}
		u := &UpdateBody{
			Object: types.ObjectID{Segment: types.SegmentID(seg), Offset: off, Length: length},
			Old:    old,
			New:    new,
		}
		got, err := DecodeUpdate(EncodeUpdate(u))
		if err != nil {
			return false
		}
		return got.Object == u.Object && bytes.Equal(got.Old, u.Old) && bytes.Equal(got.New, u.New)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOperationBodyRoundTripQuick(t *testing.T) {
	f := func(op string, redo, undo []byte, pages uint8) bool {
		if len(op) > 1000 {
			op = op[:1000]
		}
		o := &OperationBody{Op: op, RedoArgs: redo, UndoArgs: undo}
		for i := 0; i < int(pages%8); i++ {
			o.Pages = append(o.Pages, PageSeq{
				Page: types.PageID{Segment: types.SegmentID(i), Page: uint32(i * 3)},
				Seq:  uint64(i) * 77,
			})
		}
		got, err := DecodeOperation(EncodeOperation(o))
		if err != nil {
			return false
		}
		if got.Op != o.Op || !bytes.Equal(got.RedoArgs, o.RedoArgs) || !bytes.Equal(got.UndoArgs, o.UndoArgs) {
			return false
		}
		if len(got.Pages) != len(o.Pages) {
			return false
		}
		for i := range o.Pages {
			if got.Pages[i] != o.Pages[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointBodyRoundTrip(t *testing.T) {
	c := &CheckpointBody{
		DirtyPages: []DirtyPage{
			{Page: types.PageID{Segment: 1, Page: 4}, RecLSN: 100},
			{Page: types.PageID{Segment: 2, Page: 9}, RecLSN: 250},
		},
		Active: []ActiveTrans{
			{TID: sampleTID(), Status: types.StatusActive, LastLSN: 300, FirstLSN: 120},
			{TID: types.TransID{Node: "x", Seq: 1, RootNode: "x", RootSeq: 1}, Status: types.StatusPrepared, LastLSN: 400, FirstLSN: 80},
		},
	}
	got, err := DecodeCheckpoint(EncodeCheckpoint(c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", c, got)
	}
}

func TestCheckpointBodyEmpty(t *testing.T) {
	got, err := DecodeCheckpoint(EncodeCheckpoint(&CheckpointBody{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DirtyPages) != 0 || len(got.Active) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestPrepareBodyRoundTrip(t *testing.T) {
	p := &PrepareBody{Parent: "coordinator", Children: []types.NodeID{"c1", "c2", "c3"}}
	got, err := DecodePrepare(EncodePrepare(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", p, got)
	}
}

func TestPrepareBodyAcceptorsRoundTrip(t *testing.T) {
	p := &PrepareBody{Parent: "coord", Children: []types.NodeID{"c1"}, Acceptors: []types.NodeID{"a1", "a2", "a3"}}
	got, err := DecodePrepare(EncodePrepare(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", p, got)
	}
}

// TestPrepareBodyLegacyFormat pins backward compatibility: a prepare body
// written before the acp subsystem existed has no acceptor tail and must
// still decode (restart reads old logs), and the encoder must emit that
// same tail-free byte layout for plain-2PC records so the on-log format
// is unchanged when no acceptors are configured.
func TestPrepareBodyLegacyFormat(t *testing.T) {
	// Hand-built legacy encoding: parent, then u16 child count + names.
	legacy := appendString(nil, "coord")
	legacy = append(legacy, 0, 2)
	legacy = appendString(legacy, "p1")
	legacy = appendString(legacy, "p2")
	got, err := DecodePrepare(legacy)
	if err != nil {
		t.Fatalf("legacy prepare body rejected: %v", err)
	}
	if got.Parent != "coord" || len(got.Children) != 2 || got.Acceptors != nil {
		t.Errorf("legacy decode: %+v", got)
	}
	if !bytes.Equal(EncodePrepare(got), legacy) {
		t.Error("plain-2PC prepare encoding differs from legacy bytes")
	}
	// A present-but-empty acceptor tail is not canonical and must be
	// rejected (the codec stays bijective for the fuzz round-trip).
	if _, err := DecodePrepare(append(legacy, 0, 0)); err == nil {
		t.Error("empty acceptor tail accepted")
	}
}

// TestCheckpointBodyLegacyFormat: same compatibility pin for checkpoint
// records — no trailing ACP length means an empty ACP blob, and an
// ACP-free checkpoint encodes without the tail.
func TestCheckpointBodyLegacyFormat(t *testing.T) {
	legacy := []byte{0, 0, 0, 0, 0, 0, 0, 0} // zero dirty pages, zero active
	got, err := DecodeCheckpoint(legacy)
	if err != nil {
		t.Fatalf("legacy checkpoint body rejected: %v", err)
	}
	if len(got.ACP) != 0 {
		t.Errorf("legacy decode: %+v", got)
	}
	if !bytes.Equal(EncodeCheckpoint(got), legacy) {
		t.Error("ACP-free checkpoint encoding differs from legacy bytes")
	}
	if _, err := DecodeCheckpoint(append(legacy, 0, 0, 0, 0)); err == nil {
		t.Error("empty ACP tail accepted")
	}
	withACP := &CheckpointBody{ACP: []byte{1, 2, 3}}
	rt, err := DecodeCheckpoint(EncodeCheckpoint(withACP))
	if err != nil || !bytes.Equal(rt.ACP, withACP.ACP) {
		t.Errorf("ACP blob round trip: %+v err %v", rt, err)
	}
}

func TestPrepareBodyNoChildren(t *testing.T) {
	p := &PrepareBody{Parent: "root"}
	got, err := DecodePrepare(EncodePrepare(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Parent != "root" || len(got.Children) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestCLRRoundTrip(t *testing.T) {
	inner := EncodeUpdate(&UpdateBody{
		Object: types.ObjectID{Segment: 3, Offset: 64, Length: 8},
		Old:    []byte("newvalue"),
		New:    []byte("oldvalue"),
	})
	clr := &CLRBody{CompLSN: 777, Inner: inner}
	got, err := DecodeCLR(EncodeCLR(clr))
	if err != nil {
		t.Fatal(err)
	}
	if got.CompLSN != 777 || !bytes.Equal(got.Inner, inner) {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		// Must never panic, only return errors (or, astronomically
		// unlikely, a valid record).
		_, _, _ = Decode(buf, 0)
		_, _ = DecodeUpdate(buf)
		_, _ = DecodeOperation(buf)
		_, _ = DecodeCheckpoint(buf)
		_, _ = DecodePrepare(buf)
		_, _ = DecodeCLR(buf)
	}
}
