// Command allocgate is the allocation-regression gate behind
// `make bench-smoke`: it runs the named packages' benchmarks with
// -benchmem and fails if any benchmark listed in the budget file exceeds
// its checked-in bytes/op or allocs/op ceiling.
//
// Usage:
//
//	go run ./tools/allocgate -budget ALLOC_BUDGET.txt ./internal/wal ./internal/comm
//
// The budget file has one entry per line:
//
//	# benchmark      max-B/op  max-allocs/op
//	AppendForce      16        0
//	EnvelopeEncode   0         0
//
// Names match the benchmark's base name (no "Benchmark" prefix, no
// -GOMAXPROCS suffix). Every budgeted benchmark must appear in the run —
// a silently vanished benchmark would otherwise let its regression
// through — while unbudgeted benchmarks are reported informationally.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type budget struct {
	maxBytes  int64
	maxAllocs int64
}

func main() {
	os.Exit(run())
}

func run() int {
	budgetPath := flag.String("budget", "ALLOC_BUDGET.txt", "budget file path")
	benchtime := flag.String("benchtime", "100000x", "benchtime passed to go test (iteration counts amortize warm-up allocations)")
	pattern := flag.String("bench", ".", "benchmark pattern passed to go test")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "allocgate: no packages given")
		return 2
	}

	budgets, err := readBudgets(*budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		return 2
	}

	args := append([]string{"test", "-run", "^$", "-bench", *pattern, "-benchmem", "-benchtime", *benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(out.Bytes())
		fmt.Fprintln(os.Stderr, "allocgate: benchmark run failed:", err)
		return 2
	}

	// Benchmark output line:
	//   BenchmarkName[-P]  N  ns/op  B/op  allocs/op
	re := regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+\S+ ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)
	seen := map[string]bool{}
	failures := 0
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Text()
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		gotBytes, _ := strconv.ParseInt(m[2], 10, 64)
		gotAllocs, _ := strconv.ParseInt(m[3], 10, 64)
		b, budgeted := budgets[name]
		if !budgeted {
			fmt.Printf("allocgate: %-28s %6d B/op %4d allocs/op (no budget, informational)\n", name, gotBytes, gotAllocs)
			continue
		}
		seen[name] = true
		status := "ok"
		if gotBytes > b.maxBytes || gotAllocs > b.maxAllocs {
			status = "FAIL"
			failures++
		}
		fmt.Printf("allocgate: %-28s %6d B/op (budget %d) %4d allocs/op (budget %d) %s\n",
			name, gotBytes, b.maxBytes, gotAllocs, b.maxAllocs, status)
	}
	for name := range budgets {
		if !seen[name] {
			fmt.Fprintf(os.Stderr, "allocgate: budgeted benchmark %q did not run\n", name)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "allocgate: %d failure(s)\n", failures)
		return 1
	}
	return 0
}

func readBudgets(path string) (map[string]budget, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	budgets := map[string]budget{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want `name max-B/op max-allocs/op`, got %q", path, line, text)
		}
		maxBytes, err1 := strconv.ParseInt(fields[1], 10, 64)
		maxAllocs, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad numbers in %q", path, line, text)
		}
		budgets[fields[0]] = budget{maxBytes: maxBytes, maxAllocs: maxAllocs}
	}
	return budgets, sc.Err()
}
