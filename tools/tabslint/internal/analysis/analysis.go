// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function over one type-checked compilation unit (a Pass).
//
// The x/tools module is deliberately not a dependency — the repo builds
// offline with the bare toolchain — so tabslint carries the few dozen
// lines of driver plumbing it actually needs. The API mirrors the real
// framework closely enough that porting an analyzer to the upstream
// multichecker is a mechanical change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tabslint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run reports diagnostics on the unit via pass.Reportf.
	Run func(*Pass) error
}

// Pass holds one type-checked unit being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the unit's import path ("tabs/internal/wal", or the
	// fixture-relative path under a lintest testdata tree).
	ImportPath string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Pos locates it in the load's FileSet;
// file-level findings (e.g. lockorder on LOCK_ORDER.txt, which is not Go
// source) carry NoPos and set File/Line directly.
type Diagnostic struct {
	Pos      token.Pos
	File     string // used when Pos == NoPos
	Line     int    // used when Pos == NoPos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file/line/column against fset.
func (d Diagnostic) Position(fset *token.FileSet) (file string, line, col int) {
	if d.Pos == token.NoPos {
		return d.File, d.Line, 0
	}
	p := fset.Position(d.Pos)
	return p.Filename, p.Line, p.Column
}

// GlobalAnalyzer is one whole-program check: it sees every unit of a load
// at once, so it can follow calls across package boundaries.
type GlobalAnalyzer struct {
	Name string
	Doc  string
	Run  func(*GlobalPass) error
}

// GlobalPass is the whole load, handed to one GlobalAnalyzer.
type GlobalPass struct {
	Analyzer *GlobalAnalyzer
	Fset     *token.FileSet
	// Units is every package variant in the load.
	Units []*Unit
	// ModulePath is the import-path prefix of the analyzed module; empty
	// for fixture loads (which scopes interface dispatch to everything).
	ModulePath string
	// Dir is where per-analyzer configuration files live: the module
	// root in real runs, the fixture root under lintest.
	Dir string
	// Partial marks a load narrower than the whole module (a targeted
	// package pattern). Checks that require seeing every package — such
	// as lockorder's stale-declared-edge detection — are skipped.
	Partial bool

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *GlobalPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ReportFilef records a diagnostic against a non-Go file (configuration
// such as LOCK_ORDER.txt).
func (p *GlobalPass) ReportFilef(file string, line int, format string, args ...any) {
	p.report(Diagnostic{File: file, Line: line, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// RunGlobal applies whole-program analyzers to the load and returns their
// raw (unsuppressed) diagnostics in deterministic order.
func RunGlobal(units []*Unit, modulePath, dir string, partial bool, analyzers []*GlobalAnalyzer) ([]Diagnostic, error) {
	if len(units) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &GlobalPass{
			Analyzer:   a,
			Fset:       units[0].Fset,
			Units:      units,
			ModulePath: modulePath,
			Dir:        dir,
			Partial:    partial,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	Sort(units[0].Fset, diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, analyzer, message.
func Sort(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		fi, li, ci := diags[i].Position(fset)
		fj, lj, cj := diags[j].Position(fset)
		if fi != fj {
			return fi < fj
		}
		if li != lj {
			return li < lj
		}
		if ci != cj {
			return ci < cj
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// Unit is the input to Run: one parsed and type-checked package variant
// (library files plus in-package tests, or an external test package).
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Run applies each per-unit analyzer to the unit and returns the
// surviving diagnostics sorted by position. Findings on lines governed by
// a //tabslint:ignore directive are dropped. (The driver uses RunRaw plus
// a load-wide Suppressions so directive staleness can be tracked across
// unit and global analyzers together; Run is the self-contained form
// lintest and single-unit callers want.)
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := RunRaw(u, analyzers)
	if err != nil {
		return nil, err
	}
	sup := NewSuppressions()
	sup.Collect(u.Fset, u.Files)
	kept := sup.Filter(u.Fset, diags)
	Sort(u.Fset, kept)
	return kept, nil
}

// RunRaw applies each per-unit analyzer and returns every diagnostic,
// ignoring suppression directives.
func RunRaw(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			Pkg:        u.Pkg,
			TypesInfo:  u.Info,
			ImportPath: u.ImportPath,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// Suppressions is the set of //tabslint:ignore directives in a load, with
// per-directive use tracking so directives that stopped suppressing
// anything are themselves findings (Stale).
type Suppressions struct {
	seen    map[string]bool // file names already collected
	entries []*directive
	byLine  map[string]map[int][]*directive
}

// directive is one //tabslint:ignore comment.
type directive struct {
	pos   token.Pos
	file  string
	line  int
	names []string
	used  bool
}

// NewSuppressions returns an empty set.
func NewSuppressions() *Suppressions {
	return &Suppressions{seen: map[string]bool{}, byLine: map[string]map[int][]*directive{}}
}

// Collect scans files for directives of the form
//
//	//tabslint:ignore name1,name2 free-form reason
//
// The reason is mandatory by convention (reviewed, not enforced); the
// directive applies to findings on its own line and the line below. Files
// already collected (a unit sharing files with another) are skipped.
func (s *Suppressions) Collect(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		if s.seen[fname] {
			continue
		}
		s.seen[fname] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//tabslint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{
					pos:   c.Pos(),
					file:  pos.Filename,
					line:  pos.Line,
					names: strings.Split(fields[0], ","),
				}
				s.entries = append(s.entries, d)
				m := s.byLine[d.file]
				if m == nil {
					m = map[int][]*directive{}
					s.byLine[d.file] = m
				}
				m[d.line] = append(m[d.line], d)
			}
		}
	}
}

// Filter drops diagnostics covered by a directive on their line or the
// line directly above, marking the directives that fired.
func (s *Suppressions) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		file, line, _ := d.Position(fset)
		if !s.covers(file, line, d.Analyzer) {
			kept = append(kept, d)
		}
	}
	return kept
}

// covers finds and marks every matching directive.
func (s *Suppressions) covers(file string, line int, analyzer string) bool {
	found := false
	lines := s.byLine[file]
	for _, ln := range []int{line, line - 1} {
		for _, d := range lines[ln] {
			for _, name := range d.names {
				if name == "all" || name == analyzer {
					d.used = true
					found = true
				}
			}
		}
	}
	return found
}

// Stale returns one staleignore diagnostic per directive that suppressed
// nothing, so suppressions cannot outlive the bugs they excused.
func (s *Suppressions) Stale() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.entries {
		if d.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Analyzer: "staleignore",
			Message: fmt.Sprintf("//tabslint:ignore %s suppresses no finding; delete the directive (or fix its analyzer list)",
				strings.Join(d.names, ",")),
		})
	}
	return out
}
