// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function over one type-checked compilation unit (a Pass).
//
// The x/tools module is deliberately not a dependency — the repo builds
// offline with the bare toolchain — so tabslint carries the few dozen
// lines of driver plumbing it actually needs. The API mirrors the real
// framework closely enough that porting an analyzer to the upstream
// multichecker is a mechanical change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tabslint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run reports diagnostics on the unit via pass.Reportf.
	Run func(*Pass) error
}

// Pass holds one type-checked unit being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the unit's import path ("tabs/internal/wal", or the
	// fixture-relative path under a lintest testdata tree).
	ImportPath string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Unit is the input to Run: one parsed and type-checked package variant
// (library files plus in-package tests, or an external test package).
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Run applies each analyzer to the unit and returns the surviving
// diagnostics sorted by position. Findings on lines governed by a
// //tabslint:ignore directive are dropped.
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			Pkg:        u.Pkg,
			TypesInfo:  u.Info,
			ImportPath: u.ImportPath,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sup := collectSuppressions(u.Fset, u.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(u.Fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := u.Fset.Position(kept[i].Pos), u.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// suppressions maps file -> line -> set of suppressed analyzer names
// ("all" suppresses every analyzer).
type suppressions map[string]map[int][]string

// covers reports whether a directive on the diagnostic's line or the line
// directly above names the analyzer.
func (s suppressions) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	for _, ln := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[ln] {
			if name == "all" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans comments for directives of the form
//
//	//tabslint:ignore name1,name2 free-form reason
//
// The reason is mandatory by convention (reviewed, not enforced); the
// directive applies to findings on its own line and the line below.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//tabslint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := sup[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					sup[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return sup
}
