package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"tabs/tools/tabslint/internal/analysis"
)

const src = `package x

//tabslint:ignore spanleak proven safe in this test
var a = 1

//tabslint:ignore lockhold directive that suppresses nothing
var b = 2

var c = 3 //tabslint:ignore all same-line form
`

// Line numbers in src above.
const (
	lineA = 4
	lineB = 7
	lineC = 9
)

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	at := func(line int) token.Pos { return fset.File(f.Pos()).LineStart(line) }

	sup := analysis.NewSuppressions()
	sup.Collect(fset, []*ast.File{f})
	// Collecting the same file twice must not double the directives.
	sup.Collect(fset, []*ast.File{f})

	diags := []analysis.Diagnostic{
		{Pos: at(lineA), Analyzer: "spanleak", Message: "suppressed by the line above"},
		{Pos: at(lineB), Analyzer: "durcheck", Message: "name mismatch: lockhold directive does not cover durcheck"},
		{Pos: at(lineC), Analyzer: "poolmisuse", Message: "suppressed by the same-line all directive"},
	}
	kept := sup.Filter(fset, diags)
	if len(kept) != 1 || kept[0].Analyzer != "durcheck" {
		t.Fatalf("Filter kept %v, want only the durcheck finding", kept)
	}

	// Exactly one directive suppressed nothing: the lockhold one.
	stale := sup.Stale()
	if len(stale) != 1 {
		t.Fatalf("Stale() = %v, want one finding", stale)
	}
	if stale[0].Analyzer != "staleignore" || !strings.Contains(stale[0].Message, "lockhold") {
		t.Fatalf("stale finding = %+v, want staleignore naming lockhold", stale[0])
	}
	if _, line, _ := stale[0].Position(fset); line != lineB-1 {
		t.Fatalf("stale finding on line %d, want %d (the directive line)", line, lineB-1)
	}
}

func TestSortAndFileDiagnostics(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	at := func(line int) token.Pos { return fset.File(f.Pos()).LineStart(line) }

	diags := []analysis.Diagnostic{
		{Pos: at(7), Analyzer: "b", Message: "later line"},
		{File: "LOCK_ORDER.txt", Line: 3, Analyzer: "lockorder", Message: "file-level finding"},
		{Pos: at(4), Analyzer: "b", Message: "same pos, later analyzer"},
		{Pos: at(4), Analyzer: "a", Message: "same pos, earlier analyzer"},
	}
	analysis.Sort(fset, diags)

	// File-level diagnostics (NoPos) position by File/Line and sort with
	// the rest: "LOCK_ORDER.txt" < "x.go".
	file, line, col := diags[0].Position(fset)
	if file != "LOCK_ORDER.txt" || line != 3 || col != 0 {
		t.Fatalf("diags[0] at %s:%d:%d, want LOCK_ORDER.txt:3:0", file, line, col)
	}
	want := []string{"lockorder", "a", "b", "b"}
	for i, w := range want {
		if diags[i].Analyzer != w {
			t.Fatalf("sorted analyzers = %v..., want %v", diags[i].Analyzer, want)
		}
	}
}
