// Package callgraph resolves call expressions to ssa Functions for the
// interprocedural passes: tabslint's miniature of the role
// golang.org/x/tools/go/callgraph plays upstream.
//
// Resolution is static where the language is static and class-hierarchy
// analysis (CHA) where it is not:
//
//   - direct function and concrete-method calls resolve through go/types;
//   - a call of a function literal resolves to the literal's Function;
//   - a call through a module-defined interface resolves to every module
//     method set that structurally satisfies the interface, matched by
//     method *names* (units are type-checked independently, so nominal
//     types.Implements across units is unsound here — name-set matching
//     is the cross-unit-stable approximation, and for a lint gate an
//     over-approximation is the safe direction);
//   - calls through func values and through non-module interfaces are
//     unresolved (stdlib bodies are not loaded anyway).
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/ssa"
	"tabs/tools/tabslint/internal/typeutil"
)

// Graph resolves call sites against one Program.
type Graph struct {
	prog *ssa.Program
	// modulePrefix scopes CHA: only interfaces declared in packages whose
	// path is the module path or below are dispatched.
	modulePrefix string
	// recvMethods: receiver key -> method-name set, for implements tests.
	recvMethods map[string]map[string]*ssa.Function
	// chaCache memoizes interface-method resolution.
	chaCache map[string][]*ssa.Function
}

// New builds a graph over prog. modulePath scopes interface dispatch
// ("tabs"; fixtures pass "" to dispatch every interface in the load).
func New(prog *ssa.Program, modulePath string) *Graph {
	g := &Graph{
		prog:         prog,
		modulePrefix: modulePath,
		recvMethods:  map[string]map[string]*ssa.Function{},
		chaCache:     map[string][]*ssa.Function{},
	}
	for _, fn := range prog.Funcs {
		if fn.Obj == nil || fn.Sig == nil || fn.Sig.Recv() == nil {
			continue
		}
		key := recvKeyOf(fn.Sig.Recv().Type())
		if key == "" {
			continue
		}
		m := g.recvMethods[key]
		if m == nil {
			m = map[string]*ssa.Function{}
			g.recvMethods[key] = m
		}
		m[fn.Obj.Name()] = fn
	}
	return g
}

// Resolve returns the Functions a call may invoke, in the analyzed
// program. The slice is empty for unresolvable calls (func values,
// builtins, conversions, stdlib callees).
func (g *Graph) Resolve(u *analysis.Unit, call *ast.CallExpr) []*ssa.Function {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if fn := g.prog.FuncOfLit(fun); fn != nil {
			return []*ssa.Function{fn}
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return g.resolveInterface(sel.Recv(), sel.Obj().Name())
			}
		}
	}
	callee := typeutil.Callee(u.Info, call)
	if callee == nil {
		return nil
	}
	// An interface method reached as a qualified use (rare) still needs
	// CHA dispatch.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return g.resolveInterface(sig.Recv().Type(), callee.Name())
		}
	}
	if fn := g.prog.FuncByID(ssa.FuncID(callee)); fn != nil {
		return []*ssa.Function{fn}
	}
	return nil
}

// resolveInterface returns every module method set satisfying the
// interface, by method-name matching.
func (g *Graph) resolveInterface(ifaceType types.Type, method string) []*ssa.Function {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if !g.inModule(ifaceType) {
		return nil
	}
	key := typeKeyOf(ifaceType) + "#" + method
	if fns, ok := g.chaCache[key]; ok {
		return fns
	}
	var need []string
	for i := 0; i < iface.NumMethods(); i++ {
		need = append(need, iface.Method(i).Name())
	}
	var out []*ssa.Function
	var keys []string
	for k := range g.recvMethods {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic resolution order
	for _, k := range keys {
		methods := g.recvMethods[k]
		satisfies := true
		for _, n := range need {
			if _, ok := methods[n]; !ok {
				satisfies = false
				break
			}
		}
		if satisfies {
			if fn, ok := methods[method]; ok {
				out = append(out, fn)
			}
		}
	}
	g.chaCache[key] = out
	return out
}

// inModule reports whether the interface's defining package is part of
// the analyzed module (or the graph is unscoped).
func (g *Graph) inModule(t types.Type) bool {
	if g.modulePrefix == "" {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == g.modulePrefix || strings.HasPrefix(path, g.modulePrefix+"/")
}

// recvKeyOf mirrors ssa's receiver identity ("pkgpath.TypeName").
func recvKeyOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return typeKeyOf(t)
}

func typeKeyOf(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
