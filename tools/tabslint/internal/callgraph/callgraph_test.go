package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/callgraph"
	"tabs/tools/tabslint/internal/ssa"
)

const src = `package x

type Stringer interface{ Str() string }

type A struct{}

func (A) Str() string { return "a" }

type B struct{}

func (*B) Str() string { return "b" }

func direct() {}

func use(s Stringer) {
	s.Str()
	direct()
	f := func() {}
	f()
	func() {}()
}
`

func load(t *testing.T) (*analysis.Unit, *ssa.Program) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	u := &analysis.Unit{ImportPath: "x", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	return u, ssa.Build([]*analysis.Unit{u})
}

// calls returns the call expressions in x.use in syntactic order, without
// descending into the function literals.
func calls(t *testing.T, prog *ssa.Program) []*ast.CallExpr {
	t.Helper()
	fn := prog.FuncByID("x.use")
	if fn == nil {
		t.Fatal("x.use not lowered")
	}
	var out []*ast.CallExpr
	ssa.Calls(fn.Body, func(c *ast.CallExpr) { out = append(out, c) })
	if len(out) != 4 {
		t.Fatalf("found %d calls in x.use, want 4", len(out))
	}
	return out
}

func ids(fns []*ssa.Function) []string {
	var out []string
	for _, fn := range fns {
		out = append(out, fn.ID)
	}
	sort.Strings(out)
	return out
}

func TestResolution(t *testing.T) {
	u, prog := load(t)
	g := callgraph.New(prog, "") // unscoped: dispatch every interface
	cs := calls(t, prog)

	// Interface dispatch (CHA): both implementations.
	got := ids(g.Resolve(u, cs[0]))
	if len(got) != 2 || got[0] != "x.(A).Str" || got[1] != "x.(B).Str" {
		t.Errorf("s.Str() resolved to %v, want [x.(A).Str x.(B).Str]", got)
	}

	// Direct call.
	if got := ids(g.Resolve(u, cs[1])); len(got) != 1 || got[0] != "x.direct" {
		t.Errorf("direct() resolved to %v, want [x.direct]", got)
	}

	// Call through a func value: unresolved by design.
	if got := g.Resolve(u, cs[2]); len(got) != 0 {
		t.Errorf("f() resolved to %v, want nothing", ids(got))
	}

	// Immediately-invoked literal: resolves to the literal's Function.
	if got := ids(g.Resolve(u, cs[3])); len(got) != 1 || got[0] != "x.use$lit2" {
		t.Errorf("func(){}() resolved to %v, want [x.use$lit2]", got)
	}
}

func TestModuleScoping(t *testing.T) {
	u, prog := load(t)
	// Package "x" is outside module "other": its interfaces must not
	// dispatch (stdlib interfaces get the same treatment in real runs).
	g := callgraph.New(prog, "other")
	cs := calls(t, prog)
	if got := g.Resolve(u, cs[0]); len(got) != 0 {
		t.Errorf("out-of-module interface dispatched to %v, want nothing", ids(got))
	}
	// Direct calls still resolve regardless of scoping.
	if got := ids(g.Resolve(u, cs[1])); len(got) != 1 || got[0] != "x.direct" {
		t.Errorf("direct() resolved to %v, want [x.direct]", got)
	}
}
