// Package lintest is tabslint's miniature of
// golang.org/x/tools/go/analysis/analysistest: it type-checks a fixture
// package under a testdata/src tree, runs one analyzer, and matches the
// diagnostics against `// want "regexp"` expectations in the fixture
// source. Fixtures may import real module packages (tabs/internal/...)
// so analyzers are exercised against the genuine types they match on.
package lintest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/loader"
)

// Run loads testdata/src/<path> (testdata relative to the calling test's
// working directory), applies the analyzer, and reports mismatches
// between produced diagnostics and // want expectations on t.
func Run(t *testing.T, testdata string, path string, a *analysis.Analyzer) {
	t.Helper()
	root, mod, err := loader.FindModule(".")
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	cfg := &loader.Config{ModuleRoot: root, ModulePath: mod, SrcDir: src, IncludeTests: true}
	units, err := cfg.LoadDir(filepath.Join(src, filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("lintest: loading %s: %v", path, err)
	}
	for _, u := range units {
		diags, err := analysis.Run(u, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("lintest: running %s on %s: %v", a.Name, u.ImportPath, err)
		}
		checkExpectations(t, u, diags)
	}
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// checkExpectations compares diagnostics with // want comments.
func checkExpectations(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				pats, err := parseWant(text[idx+len("// want "):])
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range pats {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: p})
				}
			}
		}
	}
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWant parses a sequence of Go-quoted regexps, double-quoted or raw
// (backtick — the usual choice, since diagnostic messages quote
// identifiers with double quotes).
func parseWant(s string) ([]*regexp.Regexp, error) {
	var pats []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		// Find the end of the quoted string; only double quotes escape.
		end := -1
		for i := 1; i < len(s); i++ {
			if quote == '"' && s[i] == '\\' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		pats = append(pats, re)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return pats, nil
}
