// Package lintest is tabslint's miniature of
// golang.org/x/tools/go/analysis/analysistest: it type-checks a fixture
// package under a testdata/src tree, runs one analyzer, and matches the
// diagnostics against `// want "regexp"` expectations in the fixture
// source. Fixtures may import real module packages (tabs/internal/...)
// so analyzers are exercised against the genuine types they match on.
package lintest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/loader"
)

// Run loads testdata/src/<path> (testdata relative to the calling test's
// working directory), applies the analyzer, and reports mismatches
// between produced diagnostics and // want expectations on t.
func Run(t *testing.T, testdata string, path string, a *analysis.Analyzer) {
	t.Helper()
	root, mod, err := loader.FindModule(".")
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	cfg := &loader.Config{ModuleRoot: root, ModulePath: mod, SrcDir: src, IncludeTests: true}
	units, err := cfg.LoadDir(filepath.Join(src, filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("lintest: loading %s: %v", path, err)
	}
	for _, u := range units {
		diags, err := analysis.Run(u, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("lintest: running %s on %s: %v", a.Name, u.ImportPath, err)
		}
		checkExpectations(t, u, diags)
	}
}

// RunGlobal loads one or more fixture packages under testdata/src into a
// single whole-program load, applies the global analyzer, and matches
// diagnostics against expectations. Go files carry `// want "regexp"`
// comments as in Run; configuration files in the first path's directory
// (LOCK_ORDER.txt) carry `# want "regexp"` on the line the finding is
// expected at. The first path is the fixture root: analyzer configuration
// is resolved there. ModulePath is left empty so interface dispatch is
// unscoped, as the fixtures have no module prefix.
func RunGlobal(t *testing.T, testdata string, a *analysis.GlobalAnalyzer, paths ...string) {
	t.Helper()
	if len(paths) == 0 {
		t.Fatalf("lintest: RunGlobal needs at least one fixture path")
	}
	root, mod, err := loader.FindModule(".")
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	cfg := &loader.Config{ModuleRoot: root, ModulePath: mod, SrcDir: src, IncludeTests: true}
	var units []*analysis.Unit
	for _, p := range paths {
		us, err := cfg.LoadDir(filepath.Join(src, filepath.FromSlash(p)))
		if err != nil {
			t.Fatalf("lintest: loading %s: %v", p, err)
		}
		units = append(units, us...)
	}
	if len(units) == 0 {
		t.Fatalf("lintest: no packages under %v", paths)
	}
	dir := filepath.Join(src, filepath.FromSlash(paths[0]))
	diags, err := analysis.RunGlobal(units, "", dir, false, []*analysis.GlobalAnalyzer{a})
	if err != nil {
		t.Fatalf("lintest: running %s: %v", a.Name, err)
	}
	sup := analysis.NewSuppressions()
	for _, u := range units {
		sup.Collect(u.Fset, u.Files)
	}
	fset := units[0].Fset
	diags = sup.Filter(fset, diags)
	analysis.Sort(fset, diags)

	wants := collectWants(t, units)
	wants = append(wants, collectFileWants(t, filepath.Join(dir, "LOCK_ORDER.txt"))...)
	for _, d := range diags {
		file, line, _ := d.Position(fset)
		pos := token.Position{Filename: file, Line: line}
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", file, line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants gathers // want expectations across every unit's files,
// deduplicating files shared between unit variants.
func collectWants(t *testing.T, units []*analysis.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	seen := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			fname := u.Fset.Position(f.Pos()).Filename
			if seen[fname] {
				continue
			}
			seen[fname] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					idx := strings.Index(text, "// want ")
					if idx < 0 {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					pats, err := parseWant(text[idx+len("// want "):])
					if err != nil {
						t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
						continue
					}
					for _, p := range pats {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: p})
					}
				}
			}
		}
	}
	return wants
}

// collectFileWants reads `# want "regexp"` expectations from a non-Go
// configuration file; a missing file is simply no expectations.
func collectFileWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "# want ")
		if idx < 0 {
			continue
		}
		pats, err := parseWant(line[idx+len("# want "):])
		if err != nil {
			t.Errorf("%s:%d: bad want comment: %v", path, i+1, err)
			continue
		}
		for _, p := range pats {
			wants = append(wants, &expectation{file: path, line: i + 1, pattern: p})
		}
	}
	return wants
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// checkExpectations compares diagnostics with // want comments.
func checkExpectations(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				pats, err := parseWant(text[idx+len("// want "):])
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range pats {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: p})
				}
			}
		}
	}
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWant parses a sequence of Go-quoted regexps, double-quoted or raw
// (backtick — the usual choice, since diagnostic messages quote
// identifiers with double quotes).
func parseWant(s string) ([]*regexp.Regexp, error) {
	var pats []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		// Find the end of the quoted string; only double quotes escape.
		end := -1
		for i := 1; i < len(s); i++ {
			if quote == '"' && s[i] == '\\' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		pats = append(pats, re)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return pats, nil
}
