// Package loader parses and type-checks packages of this module using
// only the standard library, so tabslint runs on a bare toolchain with no
// network and no module cache.
//
// Imports are resolved by a three-way chain: paths inside the module map
// to their source directories, paths under a configured extra source tree
// (the lintest fixture layout, testdata/src/<path>) map there, and
// everything else falls back to the compiler's source importer, which
// type-checks the standard library from GOROOT. Cgo is disabled so the
// fallback never needs a C toolchain.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
)

// Config directs a load.
type Config struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path prefix ("tabs"). Filled
	// from go.mod by FindModule when empty.
	ModulePath string
	// SrcDir, when set, resolves import paths that are neither module
	// paths nor standard library: path p maps to SrcDir/p. lintest
	// points this at a testdata/src tree.
	SrcDir string
	// IncludeTests selects whether *_test.go files join the load.
	IncludeTests bool

	fset *token.FileSet
	imp  *chainImporter
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("loader: no module directive in %s/go.mod", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load type-checks the packages selected by patterns ("./...",
// "./internal/...", or plain directories relative to the module root) and
// returns one analysis unit per package variant: the library files plus
// in-package tests as one unit, an external _test package as another.
func (cfg *Config) Load(patterns []string) ([]*analysis.Unit, error) {
	cfg.init()
	dirs, err := cfg.expand(patterns)
	if err != nil {
		return nil, err
	}
	var units []*analysis.Unit
	for _, dir := range dirs {
		us, err := cfg.loadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// LoadDir type-checks the single directory dir (used by lintest on one
// fixture package).
func (cfg *Config) LoadDir(dir string) ([]*analysis.Unit, error) {
	cfg.init()
	return cfg.loadDir(dir)
}

func (cfg *Config) init() {
	if cfg.fset != nil {
		return
	}
	build.Default.CgoEnabled = false // keep the source importer C-free
	cfg.fset = token.NewFileSet()
	cfg.imp = &chainImporter{
		cfg:   cfg,
		std:   importer.ForCompiler(cfg.fset, "source", nil).(types.ImporterFrom),
		cache: map[string]*types.Package{},
	}
}

// expand turns patterns into a sorted list of package directories.
func (cfg *Config) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := filepath.Join(cfg.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathOf maps a package directory back to its import path. A
// directory under SrcDir takes its SrcDir-relative path — the same
// identity imports of it resolve to — so whole-program passes see one
// package, not a fixture loaded under two names.
func (cfg *Config) importPathOf(dir string) string {
	if cfg.SrcDir != "" {
		if rel, err := filepath.Rel(cfg.SrcDir, dir); err == nil && !strings.HasPrefix(rel, "..") && rel != "." {
			return filepath.ToSlash(rel)
		}
	}
	if rel, err := filepath.Rel(cfg.ModuleRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return cfg.ModulePath
		}
		return cfg.ModulePath + "/" + filepath.ToSlash(rel)
	}
	if cfg.SrcDir != "" {
		if rel, err := filepath.Rel(cfg.SrcDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// loadDir parses dir and type-checks its package variants.
func (cfg *Config) loadDir(dir string) ([]*analysis.Unit, error) {
	lib, inTest, extTest, err := cfg.parseDir(dir, cfg.IncludeTests)
	if err != nil {
		return nil, err
	}
	path := cfg.importPathOf(dir)
	var units []*analysis.Unit
	if len(lib)+len(inTest) > 0 {
		u, err := cfg.check(path, append(append([]*ast.File{}, lib...), inTest...))
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(extTest) > 0 {
		u, err := cfg.check(path+"_test", extTest)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// parseDir splits a directory's files into library, in-package test, and
// external test groups.
func (cfg *Config) parseDir(dir string, includeTests bool) (lib, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !includeTests {
			continue
		}
		f, err := parser.ParseFile(cfg.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !isTest:
			lib = append(lib, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return lib, inTest, extTest, nil
}

// check type-checks one unit.
func (cfg *Config) check(path string, files []*ast.File) (*analysis.Unit, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: cfg.imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, cfg.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, firstErr)
	}
	return &analysis.Unit{ImportPath: path, Fset: cfg.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// chainImporter resolves module-internal and fixture imports from source
// directories and everything else through the stdlib source importer.
type chainImporter struct {
	cfg   *Config
	std   types.ImporterFrom
	cache map[string]*types.Package
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ci.cache[path]; ok {
		return pkg, nil
	}
	if srcDir, ok := ci.resolveDir(path); ok {
		// Imported packages are type-checked from library files only;
		// units under analysis add their test files separately.
		lib, _, _, err := ci.cfg.parseDir(srcDir, false)
		if err != nil {
			return nil, fmt.Errorf("loader: importing %s: %w", path, err)
		}
		if len(lib) == 0 {
			return nil, fmt.Errorf("loader: importing %s: no Go files in %s", path, srcDir)
		}
		conf := types.Config{Importer: ci}
		pkg, err := conf.Check(path, ci.cfg.fset, lib, nil)
		if err != nil {
			return nil, fmt.Errorf("loader: importing %s: %w", path, err)
		}
		ci.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := ci.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	ci.cache[path] = pkg
	return pkg, nil
}

// resolveDir maps an import path to a source directory when the path is
// module-internal or under the extra fixture tree.
func (ci *chainImporter) resolveDir(path string) (string, bool) {
	mod := ci.cfg.ModulePath
	if path == mod {
		return ci.cfg.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, mod+"/"); ok {
		return filepath.Join(ci.cfg.ModuleRoot, filepath.FromSlash(rest)), true
	}
	if ci.cfg.SrcDir != "" {
		dir := filepath.Join(ci.cfg.SrcDir, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}
