// Package bufown tracks ownership of size-classed pool buffers across
// function boundaries: a buffer handed out by a pool-get function must
// reach exactly one Put (or a documented ownership-transfer point) on
// every path. Returning one to the pool twice corrupts the free list for
// a later holder; never returning it silently defeats the pool.
//
// The pool API is declared with doc-comment directives, so the pass needs
// no hard-coded knowledge of any package:
//
//	//tabslint:pool-get       the function returns a pool-owned buffer;
//	                          the caller owns it
//	//tabslint:pool-put       calling this returns the first slice-typed
//	                          argument to the pool (consumes it)
//	//tabslint:pool-transfer  the callee takes ownership of the first
//	                          slice-typed argument (a documented transfer
//	                          point: enqueue, async write, cache insert)
//
// Consumption is interprocedural: a helper that forwards its parameter to
// a pool-put consumes that parameter too, computed as a bottom-up
// fixpoint over the callgraph (including interface dispatch). The pass
// then runs a forward dataflow per function over {maybe-live,
// maybe-consumed} bits and reports:
//
//   - double Put: a consuming call whose argument may already have been
//     consumed on some path;
//   - leak: a buffer still live on some path out of the function
//     (deferred Puts are replayed in the exit block, so `defer
//     putFrameBuf(b)` is seen on every path).
//
// Returning the buffer, storing it into a field, sending it on a channel
// or capturing it in a closure transfers ownership out of the analyzed
// frame; the pass stops tracking rather than guess. Use-after-Put stays
// poolmisuse's job.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/callgraph"
	"tabs/tools/tabslint/internal/ssa"
)

// Analyzer is the bufown check.
var Analyzer = &analysis.GlobalAnalyzer{
	Name: "bufown",
	Doc:  "pool buffer ownership: every buffer from a //tabslint:pool-get function reaches exactly one Put or documented transfer point",
	Run:  run,
}

const (
	bitLive     uint8 = 1 << iota // may still own the buffer
	bitConsumed                   // may already have been Put/transferred
)

func run(pass *analysis.GlobalPass) error {
	prog := ssa.Build(pass.Units)
	graph := callgraph.New(prog, pass.ModulePath)
	pool := poolSummaries(prog, graph)

	for _, fn := range prog.Funcs {
		if fn.InTestFile {
			continue
		}
		checkFunc(pass, fn, graph, pool)
	}
	return nil
}

// own is the dataflow fact: per-variable ownership bits.
type own map[types.Object]uint8

func (o own) clone() own {
	n := make(own, len(o))
	for k, v := range o {
		n[k] = v
	}
	return n
}

func (o own) merge(p own) own {
	n := o.clone()
	for k, v := range p {
		n[k] |= v
	}
	return n
}

func (o own) equal(p own) bool {
	if len(o) != len(p) {
		return false
	}
	for k, v := range o {
		if p[k] != v {
			return false
		}
	}
	return true
}

func checkFunc(pass *analysis.GlobalPass, fn *ssa.Function, graph *callgraph.Graph, pool *poolInfo) {
	info := fn.Unit.Info
	// Variables captured by a nested closure leave this frame's custody;
	// tracking them here would double-count what the closure does.
	captured := capturedObjects(fn, info)
	// acquireSite remembers where each tracked variable first received a
	// pool buffer, for leak diagnostics.
	acquireSite := map[types.Object]token.Pos{}

	tr := func(in ssa.Fact, ins ssa.Instr) ssa.Fact {
		return transfer(fn, graph, pool, captured, acquireSite, in.(own), ins)
	}
	fl := ssa.Flow{
		Init:     own{},
		Transfer: tr,
		Merge:    func(a, b ssa.Fact) ssa.Fact { return a.(own).merge(b.(own)) },
		Equal:    func(a, b ssa.Fact) bool { return a.(own).equal(b.(own)) },
	}

	fn.Forward(fl, func(in ssa.Fact, ins ssa.Instr, _ *ssa.Block) {
		o := in.(own)
		forEachCall(ins, func(call *ast.CallExpr) {
			for _, arg := range consumedArgs(fn, graph, pool, call) {
				obj := identObj(info, arg)
				if obj == nil {
					continue
				}
				if o[obj]&bitConsumed != 0 {
					pass.Reportf(arg.Pos(), "pool buffer %q may already have been returned to the pool; this second Put corrupts the free list for a later holder", obj.Name())
				}
			}
		})
	})

	// Leak: still maybe-live after the exit block (deferred Puts included).
	exit := fn.ExitFact(fl)
	if exit == nil {
		return
	}
	o := exit.(own)
	var leaked []types.Object
	for obj, bits := range o {
		if bits&bitLive != 0 {
			leaked = append(leaked, obj)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].Pos() < leaked[j].Pos() })
	for _, obj := range leaked {
		pos := acquireSite[obj]
		if !pos.IsValid() {
			pos = obj.Pos()
		}
		pass.Reportf(pos, "pool buffer %q does not reach a Put or //tabslint:pool-transfer point on every path out of %s; the pool never gets it back", obj.Name(), fn.ID)
	}
}

// transfer advances the ownership fact across one instruction.
func transfer(fn *ssa.Function, graph *callgraph.Graph, pool *poolInfo, captured map[types.Object]bool, acquireSite map[types.Object]token.Pos, in own, ins ssa.Instr) ssa.Fact {
	info := fn.Unit.Info
	out := in
	cloned := false
	set := func(obj types.Object, bits uint8) {
		if !cloned {
			out = in.clone()
			cloned = true
		}
		if bits == 0 {
			delete(out, obj)
		} else {
			out[obj] = bits
		}
	}

	// Consuming calls first: the argument moves to the pool. forEachCall
	// skips deferred registrations (the consumption happens at the
	// exit-block replay) and go statements (handled below).
	forEachCall(ins, func(call *ast.CallExpr) {
		for _, arg := range consumedArgs(fn, graph, pool, call) {
			if obj := identObj(info, arg); obj != nil && out[obj] != 0 {
				set(obj, bitConsumed)
			}
		}
	})

	switch n := ins.Node.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[i]
				lobj := identObj(info, lhs)
				if lobj != nil {
					switch {
					case isGetCall(fn, graph, pool, rhs) && !captured[lobj]:
						set(lobj, bitLive)
						if _, seen := acquireSite[lobj]; !seen {
							acquireSite[lobj] = rhs.Pos()
						}
					case identObj(info, rhs) != nil && out[identObj(info, rhs)] != 0:
						// Move: `c := b` renames the owner.
						robj := identObj(info, rhs)
						if !captured[lobj] {
							set(lobj, out[robj])
						}
						set(robj, 0)
					default:
						set(lobj, 0) // rebinding to something untracked
					}
					continue
				}
				// Storing a tracked buffer into a field/map/global hands
				// it to another owner: stop tracking.
				if robj := identObj(info, rhs); robj != nil && out[robj] != 0 {
					set(robj, 0)
				}
			}
		} else {
			for _, lhs := range n.Lhs {
				if lobj := identObj(info, lhs); lobj != nil {
					set(lobj, 0)
				}
			}
		}
	case *ast.ReturnStmt:
		// Ownership transfers to the caller (the enclosing function should
		// itself be marked //tabslint:pool-get if it hands out raw pool
		// buffers).
		for _, res := range n.Results {
			if obj := identObj(info, res); obj != nil && out[obj] != 0 {
				set(obj, 0)
			}
		}
	case *ast.SendStmt:
		if obj := identObj(info, n.Value); obj != nil && out[obj] != 0 {
			set(obj, 0)
		}
	case *ast.GoStmt:
		// The spawned goroutine owns whatever tracked buffer it receives;
		// its Put (or leak) happens on another stack this frame cannot
		// see, so tracking stops.
		for _, arg := range n.Call.Args {
			if obj := identObj(info, arg); obj != nil && out[obj] != 0 {
				set(obj, 0)
			}
		}
	}
	return out
}

// forEachCall visits the calls an instruction *executes*. A Deferred
// replay instruction executes only its top-level call (its arguments were
// evaluated at registration); a DeferStmt or GoStmt registration executes
// only the calls inside the argument list, not the call itself.
func forEachCall(ins ssa.Instr, visit func(*ast.CallExpr)) {
	if ins.Deferred {
		if call, ok := ins.Node.(*ast.CallExpr); ok {
			visit(call)
		}
		return
	}
	switch n := ins.Node.(type) {
	case *ast.DeferStmt:
		for _, arg := range n.Call.Args {
			ssa.Calls(arg, visit)
		}
	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			ssa.Calls(arg, visit)
		}
	default:
		ssa.Calls(ins.Node, visit)
	}
}

// consumedArgs returns the argument expressions this call consumes
// (returns to the pool or takes ownership of), per the callees' summaries.
func consumedArgs(fn *ssa.Function, graph *callgraph.Graph, pool *poolInfo, call *ast.CallExpr) []ast.Expr {
	callees := graph.Resolve(fn.Unit, call)
	if len(callees) == 0 {
		return nil
	}
	args := positionalArgs(fn.Unit.Info, call)
	var out []ast.Expr
	seen := map[int]bool{}
	for _, callee := range callees {
		for i := range pool.consumes[callee.ID] {
			if i < len(args) && args[i] != nil && !seen[i] {
				seen[i] = true
				out = append(out, args[i])
			}
		}
	}
	return out
}

// isGetCall reports whether e is a call to a //tabslint:pool-get function.
func isGetCall(fn *ssa.Function, graph *callgraph.Graph, pool *poolInfo, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, callee := range graph.Resolve(fn.Unit, call) {
		if pool.gets[callee.ID] {
			return true
		}
	}
	return false
}

// poolInfo is the whole-program pool summary.
type poolInfo struct {
	// gets marks functions whose result is a caller-owned pool buffer.
	gets map[string]bool
	// consumes maps function ID -> call-position indices whose argument is
	// returned to the pool or ownership-transferred. Positions follow the
	// call site: receiver 0 then arguments for methods, arguments from 0
	// for plain functions.
	consumes map[string]map[int]bool
}

// poolSummaries reads the pool directives and closes consumption over the
// callgraph: a function that forwards a parameter to a consuming position
// consumes that parameter itself.
func poolSummaries(prog *ssa.Program, graph *callgraph.Graph) *poolInfo {
	pool := &poolInfo{gets: map[string]bool{}, consumes: map[string]map[int]bool{}}

	// paramIdx mirrors the call-position convention for each function.
	paramIdx := map[string]map[types.Object]int{}
	for _, fn := range prog.Funcs {
		idx := map[types.Object]int{}
		recv, params := fn.RecvAndParams()
		base := 0
		if recv != nil {
			idx[recv] = 0
			base = 1
		}
		for i, p := range params {
			idx[p] = base + i
		}
		paramIdx[fn.ID] = idx

		if hasDirective(fn.Doc, "pool-get") {
			pool.gets[fn.ID] = true
		}
		if hasDirective(fn.Doc, "pool-put") || hasDirective(fn.Doc, "pool-transfer") {
			if i, ok := firstSliceParam(fn); ok {
				pool.consume(fn.ID, i)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			info := fn.Unit.Info
			idx := paramIdx[fn.ID]
			for _, blk := range fn.Blocks {
				for _, ins := range blk.Instrs {
					ssa.Calls(ins.Node, func(call *ast.CallExpr) {
						callees := graph.Resolve(fn.Unit, call)
						if len(callees) == 0 {
							return
						}
						args := positionalArgs(info, call)
						for _, callee := range callees {
							for ci := range pool.consumes[callee.ID] {
								if ci >= len(args) || args[ci] == nil {
									continue
								}
								obj := identObj(info, args[ci])
								if obj == nil {
									continue
								}
								if pi, isParam := idx[obj]; isParam {
									if pool.consume(fn.ID, pi) {
										changed = true
									}
								}
							}
						}
					})
				}
			}
		}
	}
	return pool
}

func (p *poolInfo) consume(fnID string, i int) bool {
	m := p.consumes[fnID]
	if m == nil {
		m = map[int]bool{}
		p.consumes[fnID] = m
	}
	if m[i] {
		return false
	}
	m[i] = true
	return true
}

// firstSliceParam returns the call-position index of the function's first
// slice-typed parameter (the buffer a pool-put/pool-transfer consumes).
func firstSliceParam(fn *ssa.Function) (int, bool) {
	recv, params := fn.RecvAndParams()
	base := 0
	if recv != nil {
		base = 1
	}
	for i, p := range params {
		if _, ok := p.Type().Underlying().(*types.Slice); ok {
			return base + i, true
		}
	}
	return 0, false
}

// hasDirective reports whether doc carries the //tabslint:<name> directive.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//tabslint:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// positionalArgs lays the call's value expressions out by call-position
// index: the receiver (for a method value call) first, then arguments.
func positionalArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			out = append(out, fun.X)
		}
	}
	if out == nil && calleeHasRecv(info, call) {
		out = append(out, nil) // receiver slot unknown (method expression)
	}
	out = append(out, call.Args...)
	return out
}

// calleeHasRecv reports whether the call's callee signature has a receiver
// not present at the call site as a selector operand.
func calleeHasRecv(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig.Recv() != nil
		}
	}
	return false
}

// capturedObjects collects the variables referenced from function literals
// nested in fn; buffers they hold leave fn's custody.
func capturedObjects(fn *ssa.Function, info *types.Info) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						out[obj] = true
					}
				}
			}
			return true
		})
		return false
	})
	return out
}

// identObj resolves a (possibly parenthesized) identifier expression to
// its variable object, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		if _, isVar := obj.(*types.Var); isVar {
			return obj
		}
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		if _, isVar := obj.(*types.Var); isVar {
			return obj
		}
	}
	return nil
}
