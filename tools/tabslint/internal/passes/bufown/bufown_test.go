package bufown_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/bufown"
)

func TestBufown(t *testing.T) {
	lintest.RunGlobal(t, "../../../testdata", bufown.Analyzer, "bufown/a")
}
