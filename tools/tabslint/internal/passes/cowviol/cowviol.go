// Package cowviol enforces the copy-on-write discipline around
// atomic.Pointer publication, the idiom the routing cache, placement maps
// and lock-manager tracing all rely on: a snapshot reachable from a
// published pointer is immutable — readers load it without a lock, so any
// in-place edit is a data race the race detector only catches if the
// interleaving happens. Mutators must clone, edit the clone, and Store.
//
// A value is *published* once it is loaded from an atomic.Pointer
// (someone else may hold it too) or once it has been passed to Store/
// Swap/CompareAndSwap (readers may hold it from now on). The pass runs a
// forward dataflow per function tracking published locals, follows
// derivation through field selection, indexing and dereference, and
// reports:
//
//   - direct mutation: assignment, IncDec, delete, clear or append whose
//     target is reachable from a published value;
//   - interprocedural mutation: passing a published value to a function
//     (or method, including interface dispatch) whose body may deep-
//     mutate that parameter, computed as a bottom-up fixpoint over the
//     callgraph.
//
// Cloning idioms need no annotation: a value returned by an ordinary call
// (maps.Clone, a make+copy helper) is fresh, so derivation stops there.
package cowviol

import (
	"go/ast"
	"go/types"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/callgraph"
	"tabs/tools/tabslint/internal/ssa"
)

// Analyzer is the cowviol check.
var Analyzer = &analysis.GlobalAnalyzer{
	Name: "cowviol",
	Doc:  "copy-on-write discipline for atomic.Pointer snapshots: no mutation of a value reachable from a published pointer, directly or through any call",
	Run:  run,
}

func run(pass *analysis.GlobalPass) error {
	prog := ssa.Build(pass.Units)
	graph := callgraph.New(prog, pass.ModulePath)
	mut := mutationSummaries(prog, graph)

	for _, fn := range prog.Funcs {
		if fn.InTestFile {
			continue
		}
		checkFunc(pass, fn, graph, mut)
	}
	return nil
}

// pub is the dataflow fact: the set of local objects holding published
// values.
type pub map[types.Object]bool

func (p pub) clone() pub {
	n := make(pub, len(p))
	for k := range p {
		n[k] = true
	}
	return n
}

func (p pub) merge(o pub) pub {
	n := p.clone()
	for k := range o {
		n[k] = true
	}
	return n
}

func (p pub) equal(o pub) bool {
	if len(p) != len(o) {
		return false
	}
	for k := range p {
		if !o[k] {
			return false
		}
	}
	return true
}

func checkFunc(pass *analysis.GlobalPass, fn *ssa.Function, graph *callgraph.Graph, mut summaries) {
	info := fn.Unit.Info
	fl := ssa.Flow{
		Init:     pub{},
		Transfer: func(in ssa.Fact, ins ssa.Instr) ssa.Fact { return transfer(info, in.(pub), ins) },
		Merge:    func(a, b ssa.Fact) ssa.Fact { return a.(pub).merge(b.(pub)) },
		Equal:    func(a, b ssa.Fact) bool { return a.(pub).equal(b.(pub)) },
	}
	fn.Forward(fl, func(in ssa.Fact, ins ssa.Instr, _ *ssa.Block) {
		p := in.(pub)
		reportMutations(pass, fn, graph, mut, p, ins.Node)
	})
}

// transfer propagates published-ness through one instruction.
func transfer(info *types.Info, in pub, ins ssa.Instr) ssa.Fact {
	out := in
	cloned := false
	ensure := func() {
		if !cloned {
			out = in.clone()
			cloned = true
		}
	}
	switch n := ins.Node.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(info, id)
				if obj == nil {
					continue
				}
				ensure()
				if publishedExpr(info, in, n.Rhs[i]) {
					out[obj] = true
				} else {
					delete(out, obj)
				}
			}
		} else {
			// Tuple assignment from a call: results are fresh.
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						ensure()
						delete(out, obj)
					}
				}
			}
		}
	case *ssa.RangeHeader:
		// Key/value drawn from a published container are published.
		r := n.Range
		xPub := publishedExpr(info, in, r.X)
		for _, e := range []ast.Expr{r.Key, r.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					ensure()
					if xPub {
						out[obj] = true
					} else {
						delete(out, obj)
					}
				}
			}
		}
	}
	// A Store/Swap/CompareAndSwap publishes the locals reachable from its
	// argument, wherever it appears in the instruction.
	ssa.Calls(ins.Node, func(call *ast.CallExpr) {
		arg := publishArg(info, call)
		if arg == nil {
			return
		}
		ssa.Inspect(arg, func(node ast.Node) bool {
			if id, ok := node.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					ensure()
					out[obj] = true
				}
			}
			return true
		})
	})
	return out
}

// reportMutations reports every COW violation in one instruction.
func reportMutations(pass *analysis.GlobalPass, fn *ssa.Function, graph *callgraph.Graph, mut summaries, p pub, node ast.Node) {
	info := fn.Unit.Info
	switch n := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if target := mutatedContainer(ast.Unparen(lhs)); target != nil && publishedExpr(info, p, target) {
				pass.Reportf(lhs.Pos(), "write into %q mutates a copy-on-write published value; clone, edit the clone, then Store", render(target))
			}
		}
	case *ast.IncDecStmt:
		if target := mutatedContainer(ast.Unparen(n.X)); target != nil && publishedExpr(info, p, target) {
			pass.Reportf(n.Pos(), "increment of %q mutates a copy-on-write published value; clone, edit the clone, then Store", render(target))
		}
	}
	ssa.Calls(node, func(call *ast.CallExpr) {
		// Built-in deep mutators.
		if name, isBuiltin := builtinName(info, call); isBuiltin {
			switch name {
			case "delete", "clear":
				if len(call.Args) >= 1 && publishedExpr(info, p, call.Args[0]) {
					pass.Reportf(call.Pos(), "%s on %q mutates a copy-on-write published value; clone, edit the clone, then Store", name, render(call.Args[0]))
				}
			case "append":
				if len(call.Args) >= 1 && publishedExpr(info, p, call.Args[0]) {
					pass.Reportf(call.Pos(), "append to %q may write into the published backing array; build a fresh slice instead", render(call.Args[0]))
				}
			}
			return
		}
		// Interprocedural: published argument to a mutating parameter.
		callees := graph.Resolve(fn.Unit, call)
		if len(callees) == 0 {
			return
		}
		args := callArgs(info, call)
		for _, callee := range callees {
			idxs := mut[callee.ID]
			if len(idxs) == 0 {
				continue
			}
			for i, arg := range args {
				if arg == nil || !idxs[i] {
					continue
				}
				if publishedExpr(info, p, arg) {
					pass.Reportf(arg.Pos(), "passing %q to %s mutates a copy-on-write published value (the callee writes through this parameter); pass a clone",
						render(arg), callee.ID)
				}
			}
		}
	})
}

// mutatedContainer returns the expression owning the memory an lvalue
// writes to, or nil when the lvalue is a plain variable (rebinding, not
// mutation): p.f=… mutates p, m[k]=… mutates m, *p=… mutates p.
func mutatedContainer(lhs ast.Expr) ast.Expr {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return l.X
	case *ast.IndexExpr:
		return l.X
	case *ast.StarExpr:
		return l.X
	}
	return nil
}

// publishedExpr reports whether e's value is reachable from a published
// pointer: a published local, a derivation chain from one, or directly an
// atomic.Pointer Load.
func publishedExpr(info *types.Info, p pub, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(info, e)
		return obj != nil && p[obj]
	case *ast.SelectorExpr:
		// Derivation through a field; a package-qualified name is not.
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return publishedExpr(info, p, e.X)
		}
		return false
	case *ast.IndexExpr:
		return publishedExpr(info, p, e.X)
	case *ast.StarExpr:
		return publishedExpr(info, p, e.X)
	case *ast.UnaryExpr:
		return publishedExpr(info, p, e.X)
	case *ast.TypeAssertExpr:
		return publishedExpr(info, p, e.X)
	case *ast.SliceExpr:
		return publishedExpr(info, p, e.X)
	case *ast.CallExpr:
		return isAtomicPointerMethod(info, e, "Load")
	}
	return false
}

// publishArg returns the argument a publishing call hands to readers, or
// nil: Store(v) and Swap(v) publish v, CompareAndSwap(old, new) publishes
// new.
func publishArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	switch {
	case isAtomicPointerMethod(info, call, "Store") && len(call.Args) == 1:
		return call.Args[0]
	case isAtomicPointerMethod(info, call, "Swap") && len(call.Args) == 1:
		return call.Args[0]
	case isAtomicPointerMethod(info, call, "CompareAndSwap") && len(call.Args) == 2:
		return call.Args[1]
	}
	return nil
}

// isAtomicPointerMethod reports whether call invokes
// sync/atomic.Pointer[T].<name>.
func isAtomicPointerMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != name {
		return false
	}
	sel, ok := info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// builtinName identifies calls of the delete/clear/append builtins.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// objOf resolves an identifier to its variable object.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}

// render prints a short source form of an expression for diagnostics.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return render(e.X) + "[…]"
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.CallExpr:
		return render(e.Fun) + "()"
	case *ast.UnaryExpr:
		return e.Op.String() + render(e.X)
	case *ast.SliceExpr:
		return render(e.X) + "[…]"
	}
	return "value"
}
