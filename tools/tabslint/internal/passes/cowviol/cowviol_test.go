package cowviol_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/cowviol"
)

func TestCowviol(t *testing.T) {
	lintest.RunGlobal(t, "../../../testdata", cowviol.Analyzer, "cowviol/a")
}
