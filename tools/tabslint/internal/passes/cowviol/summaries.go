package cowviol

import (
	"go/ast"
	"go/types"

	"tabs/tools/tabslint/internal/callgraph"
	"tabs/tools/tabslint/internal/ssa"
)

// summaries maps function ID -> call-position index -> "the body may
// deep-mutate the value passed at this position". Positions follow the
// call site: for a method, 0 is the receiver and arguments start at 1;
// for a plain function, arguments start at 0.
type summaries map[string]map[int]bool

// mutationSummaries computes, as a bottom-up fixpoint over the callgraph,
// which pointer-ish parameters (pointer, map, slice, interface) each
// function may mutate — directly through an lvalue rooted at the
// parameter, via delete/clear/append, or by passing the parameter on to
// a callee's mutating position.
func mutationSummaries(prog *ssa.Program, graph *callgraph.Graph) summaries {
	sum := summaries{}
	// paramIndex: per function, object -> call-position index.
	paramIdx := map[string]map[types.Object]int{}
	for _, fn := range prog.Funcs {
		idx := map[types.Object]int{}
		recv, params := fn.RecvAndParams()
		base := 0
		if recv != nil {
			if mutable(recv.Type()) {
				idx[recv] = 0
			}
			base = 1
		}
		for i, p := range params {
			if mutable(p.Type()) {
				idx[p] = base + i
			}
		}
		paramIdx[fn.ID] = idx
	}

	mark := func(fnID string, obj types.Object) bool {
		i, ok := paramIdx[fnID][obj]
		if !ok {
			return false
		}
		m := sum[fnID]
		if m == nil {
			m = map[int]bool{}
			sum[fnID] = m
		}
		if m[i] {
			return false
		}
		m[i] = true
		return true
	}

	// Direct mutations.
	for _, fn := range prog.Funcs {
		info := fn.Unit.Info
		for _, blk := range fn.Blocks {
			for _, ins := range blk.Instrs {
				ssa.Inspect(ins.Node, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range n.Lhs {
							if t := mutatedContainer(ast.Unparen(lhs)); t != nil {
								if obj := rootObj(info, t); obj != nil {
									mark(fn.ID, obj)
								}
							}
						}
					case *ast.IncDecStmt:
						if t := mutatedContainer(ast.Unparen(n.X)); t != nil {
							if obj := rootObj(info, t); obj != nil {
								mark(fn.ID, obj)
							}
						}
					case *ast.CallExpr:
						if name, ok := builtinName(info, n); ok {
							if (name == "delete" || name == "clear" || name == "append") && len(n.Args) >= 1 {
								if obj := rootObj(info, n.Args[0]); obj != nil {
									mark(fn.ID, obj)
								}
							}
						}
					}
					return true
				})
			}
		}
	}

	// Propagate through calls to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			info := fn.Unit.Info
			for _, blk := range fn.Blocks {
				for _, ins := range blk.Instrs {
					ssa.Calls(ins.Node, func(call *ast.CallExpr) {
						callees := graph.Resolve(fn.Unit, call)
						if len(callees) == 0 {
							return
						}
						args := callArgs(info, call)
						for _, callee := range callees {
							idxs := sum[callee.ID]
							if len(idxs) == 0 {
								continue
							}
							for i, arg := range args {
								if arg == nil || !idxs[i] {
									continue
								}
								if obj := rootObj(info, arg); obj != nil {
									if mark(fn.ID, obj) {
										changed = true
									}
								}
							}
						}
					})
				}
			}
		}
	}
	return sum
}

// callArgs lays a call's value expressions out by call-position index:
// the receiver (for a method value call) at 0, then the arguments.
// Positions that are not simple value passes are nil.
func callArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			out = append(out, fun.X)
		}
	}
	if out == nil {
		// Plain call (or qualified function): no receiver slot only if
		// the callee is not a method; a method expression call
		// (T.M(recv, ...)) passes the receiver as the first argument,
		// which lines up naturally.
		if isMethodCallee(info, call) {
			out = append(out, nil)
		}
	}
	out = append(out, call.Args...)
	return out
}

// isMethodCallee reports whether the call's static callee has a receiver
// but the call site carries no receiver expression (method expression or
// interface value); the receiver slot is then unknown.
func isMethodCallee(info *types.Info, call *ast.CallExpr) bool {
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return false // receiver present
		}
	}
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig.Recv() != nil
		}
	}
	return false
}

// rootObj walks a derivation chain (selects, indexes, derefs, slices,
// unary &) to its base identifier's object; calls break the chain.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return rootObj(info, e.X)
		}
		return nil
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.SliceExpr:
		return rootObj(info, e.X)
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	}
	return nil
}

// mutable reports whether a parameter of this type can expose mutation to
// the caller: pointers, maps, slices, chans and interfaces can; values
// cannot.
func mutable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Interface, *types.Chan:
		return true
	}
	return false
}
