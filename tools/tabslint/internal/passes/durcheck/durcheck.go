// Package durcheck enforces the WAL contract at the call site: the error
// result of a durability-critical operation must not be dropped. A
// discarded error from a log append, a log force, a stable-storage write,
// or a recovery-pass writer silently breaks write-ahead logging — the
// caller proceeds as if the data were durable ("no ack before the commit
// record is durable", the invariant commit protocols live or die by).
//
// Flagged shapes, in non-test files only:
//
//   - the call as a bare expression statement (all results dropped)
//   - the call under go/defer (results unobservable)
//   - the error result assigned to the blank identifier, including an
//     explicit `_ = log.Force(...)` — for these calls "deliberately
//     ignored" still deserves a visible //tabslint:ignore with a reason
package durcheck

import (
	"go/ast"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/typeutil"
)

// Analyzer is the durcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "durcheck",
	Doc:  "errors from durability-critical calls (WAL append/force, stable writes, recovery passes) must be handled",
	Run:  run,
}

// critical lists the durability-critical methods.
var critical = []struct{ pkg, typ, name string }{
	{"tabs/internal/wal", "Log", "Append"},
	{"tabs/internal/wal", "Log", "Force"},
	{"tabs/internal/wal", "Log", "AppendAndForce"},
	{"tabs/internal/wal", "Log", "SetCheckpoint"},
	{"tabs/internal/wal", "Log", "Reclaim"},
	{"tabs/internal/disk", "Disk", "Write"},
	{"tabs/internal/disk", "Disk", "Restore"},
	{"tabs/internal/disk", "Disk", "SaveTo"},
	{"tabs/internal/disk", "Disk", "LoadFrom"},
	{"tabs/internal/recovery", "Manager", "Checkpoint"},
	{"tabs/internal/recovery", "Manager", "Reclaim"},
	{"tabs/internal/recovery", "Manager", "Restart"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					if what, ok := criticalCall(pass, call); ok {
						pass.Reportf(call.Pos(), "result of %s dropped: a durability failure here is silent", what)
					}
				}
			case *ast.GoStmt:
				if what, ok := criticalCall(pass, st.Call); ok {
					pass.Reportf(st.Call.Pos(), "error from %s unobservable under go", what)
				}
			case *ast.DeferStmt:
				if what, ok := criticalCall(pass, st.Call); ok {
					pass.Reportf(st.Call.Pos(), "error from %s unobservable under defer", what)
				}
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags the error result of a critical call landing in the
// blank identifier.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// Form 1: x, _ := f()  (one call, results spread across LHS).
	if len(st.Rhs) == 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		what, isCrit := criticalCall(pass, call)
		if !isCrit {
			return
		}
		// The error is the final result; with a single LHS it is the
		// only result.
		if isBlank(st.Lhs[len(st.Lhs)-1]) {
			pass.Reportf(call.Pos(), "error from %s assigned to _: handle it or annotate //tabslint:ignore durcheck with a reason", what)
		}
		return
	}
	// Form 2: a, b = f(), g()  (parallel assignment).
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if what, isCrit := criticalCall(pass, call); isCrit && i < len(st.Lhs) && isBlank(st.Lhs[i]) {
			pass.Reportf(call.Pos(), "error from %s assigned to _: handle it or annotate //tabslint:ignore durcheck with a reason", what)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// criticalCall reports whether call is a durability-critical method that
// returns an error.
func criticalCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || !typeutil.ReturnsError(fn) {
		return "", false
	}
	for _, c := range critical {
		if typeutil.IsMethod(fn, c.pkg, c.typ, c.name) {
			parts := strings.Split(c.pkg, "/")
			return parts[len(parts)-1] + "." + c.typ + "." + c.name, true
		}
	}
	return "", false
}
