package durcheck_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/durcheck"
)

func TestDurcheck(t *testing.T) {
	lintest.Run(t, "../../../testdata", "durcheck/a", durcheck.Analyzer)
}
