// Package lockhold flags operations that can block indefinitely while a
// sync.Mutex or sync.RWMutex locked in the same function is still held:
// channel sends and receives, selects without a default, sync.WaitGroup
// waits, time.Sleep, and the repo's domain blocking calls — WAL forces,
// simulated-disk I/O (which can park the goroutine on the virtual clock
// until another goroutine advances it), and comm-layer sends (which
// retransmit on a real timer and can wait a full timeout chain).
//
// This is the deadlock shape the WAL group-commit rewrite had to engineer
// around: a log force performed under the log mutex stalls every
// appender, and in the simulated-time harness can deadlock outright when
// the disk's latency hook needs another (now blocked) goroutine to
// advance the clock. The check is intra-procedural: it sees locks taken
// in the function it is scanning, tracks `defer mu.Unlock()` as holding
// to function end, and resets the held-set inside nested function
// literals. sync.Cond.Wait is exempt (it releases the mutex it guards).
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/typeutil"
)

// Analyzer is the lockhold check.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "potentially-unbounded blocking operations must not run while a mutex is held",
	Run:  run,
}

// blocking is the table of calls treated as potentially unbounded.
var blocking = []struct {
	pkg, typ, name string // typ == "" means package-level function
	what           string
}{
	{"time", "", "Sleep", "time.Sleep"},
	{"sync", "WaitGroup", "Wait", "sync.WaitGroup.Wait"},
	{"tabs/internal/wal", "Log", "Force", "wal.Log.Force"},
	{"tabs/internal/wal", "Log", "AppendAndForce", "wal.Log.AppendAndForce"},
	{"tabs/internal/disk", "Disk", "Read", "disk.Disk.Read"},
	{"tabs/internal/disk", "Disk", "ReadHeader", "disk.Disk.ReadHeader"},
	{"tabs/internal/disk", "Disk", "Write", "disk.Disk.Write"},
	{"tabs/internal/comm", "Manager", "Call", "comm.Manager.Call"},
	{"tabs/internal/comm", "Manager", "SendDatagram", "comm.Manager.SendDatagram"},
	{"tabs/internal/comm", "Manager", "Broadcast", "comm.Manager.Broadcast"},
	{"tabs/internal/comm", "Transport", "Send", "comm.Transport.Send"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				s := &scanner{pass: pass}
				s.scanStmts(body.List, held{})
			}
			return true
		})
	}
	return nil
}

// held tracks the mutexes currently locked on this path. Keys are the
// printed receiver expression ("m.mu"); values record where the lock was
// taken. forever marks locks released only by a deferred unlock.
type held struct {
	locks   []lockSite
	forever bool
}

type lockSite struct {
	expr string
	line int
}

func (h held) clone() held {
	return held{locks: append([]lockSite(nil), h.locks...), forever: h.forever}
}

func (h held) any() bool { return len(h.locks) > 0 }

type scanner struct {
	pass *analysis.Pass
}

// scanStmts walks a statement list sequentially, threading the held-set.
// Branch bodies get copies; their lock-state changes do not leak out (a
// branch that unlocks and returns does not unlock the fallthrough path).
func (s *scanner) scanStmts(list []ast.Stmt, h held) held {
	for _, st := range list {
		h = s.scanStmt(st, h)
	}
	return h
}

func (s *scanner) scanStmt(st ast.Stmt, h held) held {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.simple(st, h)
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.DeclStmt:
		return s.simple(st, h)
	case *ast.SendStmt:
		s.flagIfHeld(st.Pos(), "channel send", h)
		return s.simple(st, h)
	case *ast.DeferStmt:
		if kind := lockCallKind(s.pass.TypesInfo, st.Call); kind == unlockCall {
			h2 := h.clone()
			h2.forever = true
			return h2
		}
		// Deferred work runs after any held locks are (presumably)
		// released by their own defers; do not scan its guts with the
		// current held-set.
		return h
	case *ast.GoStmt:
		return h // new goroutine: not under our locks
	case *ast.BlockStmt:
		return s.scanStmts(st.List, h)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, h)
	case *ast.IfStmt:
		if st.Init != nil {
			h = s.scanStmt(st.Init, h)
		}
		s.scanExpr(st.Cond, h)
		s.scanStmts(st.Body.List, h.clone())
		if st.Else != nil {
			s.scanStmt(st.Else, h.clone())
		}
		return h
	case *ast.ForStmt:
		if st.Init != nil {
			h = s.scanStmt(st.Init, h)
		}
		s.scanExpr(st.Cond, h)
		s.scanStmts(st.Body.List, h.clone())
		return h
	case *ast.RangeStmt:
		s.scanExpr(st.X, h)
		if t, ok := s.pass.TypesInfo.Types[st.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				s.flagIfHeld(st.Pos(), "range over channel", h)
			}
		}
		s.scanStmts(st.Body.List, h.clone())
		return h
	case *ast.SwitchStmt:
		if st.Init != nil {
			h = s.scanStmt(st.Init, h)
		}
		s.scanExpr(st.Tag, h)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, h.clone())
			}
		}
		return h
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			h = s.scanStmt(st.Init, h)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, h.clone())
			}
		}
		return h
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm == nil {
					hasDefault = true
				}
				s.scanStmts(cc.Body, h.clone())
			}
		}
		if !hasDefault {
			s.flagIfHeld(st.Pos(), "select without default", h)
		}
		return h
	default:
		return h
	}
}

// simple processes a straight-line statement: lock/unlock transitions
// first, then blocking-call and channel-receive detection.
func (s *scanner) simple(st ast.Stmt, h held) held {
	out := h
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.scanStmts(n.Body.List, held{}) // runs later, under its own locks
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				s.flagIfHeld(n.Pos(), "channel receive", out)
			}
		case *ast.CallExpr:
			switch lockCallKind(s.pass.TypesInfo, n) {
			case lockCall:
				out = out.clone()
				out.locks = append(out.locks, lockSite{
					expr: recvString(n),
					line: s.pass.Fset.Position(n.Pos()).Line,
				})
			case unlockCall:
				if len(out.locks) > 0 {
					out = out.clone()
					out.locks = out.locks[:len(out.locks)-1]
				}
			default:
				if what, ok := blockingCall(s.pass.TypesInfo, n); ok {
					s.flagIfHeld(n.Pos(), "call to "+what, out)
				}
			}
		}
		return true
	})
	return out
}

// scanExpr checks an expression evaluated on the current path (loop/if
// conditions) for receives and blocking calls without lock transitions.
func (s *scanner) scanExpr(e ast.Expr, h held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				s.flagIfHeld(n.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(s.pass.TypesInfo, n); ok {
				s.flagIfHeld(n.Pos(), "call to "+what, h)
			}
		}
		return true
	})
}

// flagIfHeld reports the blocking operation when any lock is held on the
// current path.
func (s *scanner) flagIfHeld(pos token.Pos, what string, h held) {
	if !h.any() {
		return
	}
	site := h.locks[len(h.locks)-1]
	release := "released"
	if h.forever {
		release = "held until function return by a deferred unlock"
	}
	s.pass.Reportf(pos, "%s while %q (locked at line %d, %s) is held; move the blocking operation outside the critical section",
		what, site.expr, site.line, release)
}

type callKind int

const (
	otherCall callKind = iota
	lockCall
	unlockCall
)

// lockCallKind classifies mutex lock/unlock calls by their receiver type.
func lockCallKind(info *types.Info, call *ast.CallExpr) callKind {
	fn := typeutil.Callee(info, call)
	if fn == nil {
		return otherCall
	}
	p, t := typeutil.RecvOf(fn)
	if p != "sync" || (t != "Mutex" && t != "RWMutex") {
		return otherCall
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		if fn.Name() == "Lock" || fn.Name() == "RLock" {
			return lockCall
		}
		return otherCall // Try variants do not block and may fail
	case "Unlock", "RUnlock":
		return unlockCall
	}
	return otherCall
}

// blockingCall reports whether call is in the blocking table.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := typeutil.Callee(info, call)
	if fn == nil {
		return "", false
	}
	for _, b := range blocking {
		if b.typ == "" {
			if typeutil.IsFunc(fn, b.pkg, b.name) {
				return b.what, true
			}
		} else if typeutil.IsMethod(fn, b.pkg, b.typ, b.name) {
			return b.what, true
		}
	}
	return "", false
}

// recvString renders the receiver expression of a method call for the
// diagnostic message ("l.mu" from l.mu.Lock()).
func recvString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "mutex"
	}
	return exprString(sel.X)
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	default:
		return "mutex"
	}
}
