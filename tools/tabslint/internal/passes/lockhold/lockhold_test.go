package lockhold_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/lockhold"
)

func TestLockhold(t *testing.T) {
	lintest.Run(t, "../../../testdata", "lockhold/a", lockhold.Analyzer)
}
