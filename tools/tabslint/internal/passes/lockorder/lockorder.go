// Package lockorder builds the whole-program lock-acquisition graph and
// verifies it against the checked-in LOCK_ORDER.txt hierarchy.
//
// A mutex's identity is its struct field path — every instance of
// lock.bucket.mu is one lock *class* — or "pkg.var" for a package-level
// mutex. Within each function a forward dataflow tracks the classes held
// at every instruction (defer-aware: a deferred Unlock releases at exit,
// and deferred calls run LIFO with whatever is then held). An acquisition
// of B while A is held contributes the edge A -> B; calls are followed
// through the callgraph, so a helper that takes the TID-shard lock while
// its caller holds a bucket lock contributes lock.bucket.mu ->
// lock.tidShard.mu even though no single function shows both. Goroutine
// launches do not propagate the held set (lock order is a per-goroutine
// property), and _test.go bodies are skipped.
//
// The resulting graph must match LOCK_ORDER.txt exactly:
//
//   - an observed edge that is not declared fails the build (new nesting
//     must be declared in the same change that introduces it);
//   - a declared edge that is no longer observed is stale and fails the
//     build (the file cannot drift from the code);
//   - a cycle — observed or declared, including a self-edge — always
//     fails: it is a potential deadlock, which no declaration can bless.
//
// Lock hand-off is understood: a callee that *releases* an inherited
// lock before acquiring (the WAL group-commit leader unlocks l.mu for the
// disk write, then relocks it) does not contribute an edge from the
// released class — the summaries carry a must-released-before set per
// acquisition, so Force -> leadFlush produces no wal.Log.mu self-edge.
//
// Acquiring a mutex the analysis cannot name (a local variable, a mutex
// reached through a pointer parameter) contributes nothing; the repo's
// convention is that every shared mutex lives in a named struct field.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/callgraph"
	"tabs/tools/tabslint/internal/ssa"
	"tabs/tools/tabslint/internal/typeutil"
)

// OrderFile is the hierarchy file name, resolved against GlobalPass.Dir.
const OrderFile = "LOCK_ORDER.txt"

// Analyzer is the lockorder check.
var Analyzer = &analysis.GlobalAnalyzer{
	Name: "lockorder",
	Doc:  "interprocedural lock-acquisition order: every nested acquisition edge must be declared in LOCK_ORDER.txt and the declared hierarchy must be acyclic and current",
	Run:  run,
}

// edge is one ordered pair of lock classes.
type edge struct{ from, to string }

// witness records where an edge was first observed.
type witness struct {
	pos token.Pos
	// via names the callee chain for interprocedural edges ("" when the
	// acquisition is in the same function as the held lock).
	via string
}

// acqInfo summarizes one lock class a function (chain) may acquire: where,
// and which inherited classes are released first on *every* path to the
// acquisition (so a group-commit hand-off that unlocks the caller's mutex
// before relocking it contributes no edge from that mutex).
type acqInfo struct {
	pos token.Pos
	rel map[string]bool
}

// pendingCall is a call site executed with locks held.
type pendingCall struct {
	held   []string
	callee *ssa.Function
	pos    token.Pos
}

// calleeSite is one synchronous call edge with the must-released set in
// force at the site, for the transitive closure.
type calleeSite struct {
	callee *ssa.Function
	rel    map[string]bool
}

func run(pass *analysis.GlobalPass) error {
	prog := ssa.Build(pass.Units)
	graph := callgraph.New(prog, pass.ModulePath)

	direct := map[string]map[string]*acqInfo{} // fnID -> class -> first acquisition
	var pendings []pendingCall
	calleesOf := map[string][]calleeSite{} // synchronous callees, for transitive closure
	observed := map[edge]witness{}

	seen := func(e edge, w witness) {
		if _, ok := observed[e]; !ok {
			observed[e] = w
		}
	}

	for _, fn := range prog.Funcs {
		if fn.InTestFile {
			continue
		}
		fn := fn
		fl := ssa.Flow{
			Init:     lockState{held: held{}, rel: map[string]bool{}},
			Transfer: func(in ssa.Fact, ins ssa.Instr) ssa.Fact { return transfer(fn.Unit, in.(lockState), ins) },
			Merge:    func(a, b ssa.Fact) ssa.Fact { return a.(lockState).merge(b.(lockState)) },
			Equal:    func(a, b ssa.Fact) bool { return a.(lockState).equal(b.(lockState)) },
		}
		fn.Forward(fl, func(in ssa.Fact, ins ssa.Instr, _ *ssa.Block) {
			st := in.(lockState)
			h := st.held
			forEachCall(ins, func(call *ast.CallExpr) {
				if op, class, ok := mutexOp(fn.Unit.Info, call); ok {
					if op == opLock {
						if class == "" {
							return // unnameable mutex; see package comment
						}
						d := direct[fn.ID]
						if d == nil {
							d = map[string]*acqInfo{}
							direct[fn.ID] = d
						}
						if a, ok := d[class]; !ok {
							d[class] = &acqInfo{pos: call.Pos(), rel: cloneSet(st.rel)}
						} else {
							intersectInto(a.rel, st.rel)
						}
						// A lock held *now* orders before this acquisition
						// even if it was released and retaken earlier.
						for heldClass := range h {
							seen(edge{heldClass, class}, witness{pos: call.Pos()})
						}
					}
					return
				}
				callees := graph.Resolve(fn.Unit, call)
				if len(callees) == 0 {
					return
				}
				for _, callee := range callees {
					calleesOf[fn.ID] = append(calleesOf[fn.ID], calleeSite{callee: callee, rel: cloneSet(st.rel)})
				}
				if len(h) == 0 {
					return
				}
				hc := make([]string, 0, len(h))
				for c := range h {
					hc = append(hc, c)
				}
				sort.Strings(hc)
				for _, callee := range callees {
					pendings = append(pendings, pendingCall{held: hc, callee: callee, pos: call.Pos()})
				}
			})
		})
	}

	transAcq := transitiveAcquires(direct, calleesOf)
	for _, p := range pendings {
		acq := transAcq[p.callee.ID]
		classes := make([]string, 0, len(acq))
		for c := range acq {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, to := range classes {
			for _, from := range p.held {
				if acq[to].rel[from] {
					// The callee chain provably releases `from` before
					// acquiring `to` (lock hand-off), so the caller's hold
					// does not span the acquisition.
					continue
				}
				seen(edge{from, to}, witness{pos: p.pos, via: p.callee.ID})
			}
		}
	}

	declared, declLines, declErr := readOrder(filepath.Join(pass.Dir, OrderFile))
	if declErr != nil && len(observed) > 0 {
		pass.ReportFilef(filepath.Join(pass.Dir, OrderFile), 0, "cannot read lock hierarchy: %v (the lockorder analyzer requires every nested-acquisition edge to be declared)", declErr)
	}

	// Sorted observed edges for deterministic reporting.
	var edges []edge
	for e := range observed {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	for _, e := range edges {
		if _, ok := declared[e]; ok {
			continue
		}
		w := observed[e]
		via := ""
		if w.via != "" {
			via = fmt.Sprintf(" (acquired inside %s, possibly transitively)", w.via)
		}
		pass.Reportf(w.pos, "lock-order edge %q -> %q is not declared in %s%s; declare it in the same change, or restructure to respect the hierarchy",
			e.from, e.to, OrderFile, via)
	}
	// Stale declarations are only decidable against the whole program: a
	// targeted load simply does not see most packages' acquisitions.
	if !pass.Partial {
		for e, line := range declLines {
			if _, ok := observed[e]; !ok {
				pass.ReportFilef(filepath.Join(pass.Dir, OrderFile), line, "declared lock-order edge %q -> %q is no longer observed in the code; delete the stale edge", e.from, e.to)
			}
		}
	}

	// Cycles: check the union of observed and declared edges, so a
	// deadlock is reported whether it is already blessed on paper or
	// only just introduced in code.
	all := map[edge]bool{}
	for e := range observed {
		all[e] = true
	}
	for e := range declared {
		all[e] = true
	}
	for _, cyc := range cycles(all) {
		at, inObserved := token.NoPos, false
		for i := 0; i < len(cyc)-1; i++ {
			if w, ok := observed[edge{cyc[i], cyc[i+1]}]; ok {
				at, inObserved = w.pos, true
				break
			}
		}
		msg := fmt.Sprintf("lock-order cycle: %s — a potential deadlock; no declaration can allow this", strings.Join(cyc, " -> "))
		if inObserved {
			pass.Reportf(at, "%s", msg)
		} else {
			pass.ReportFilef(filepath.Join(pass.Dir, OrderFile), 0, "%s", msg)
		}
	}
	return nil
}

// held maps lock class -> nesting depth (capped so loops converge).
type held map[string]int

const maxDepth = 2

func (h held) clone() held {
	n := make(held, len(h))
	for k, v := range h {
		n[k] = v
	}
	return n
}

// lockState is the dataflow fact: the classes held at this point, and the
// inherited classes released on every path to it (a may-hold set and a
// must-have-released set).
type lockState struct {
	held held
	rel  map[string]bool
}

func (s lockState) clone() lockState {
	return lockState{held: s.held.clone(), rel: cloneSet(s.rel)}
}

func (s lockState) merge(o lockState) lockState {
	n := s.clone()
	for k, v := range o.held {
		if v > n.held[k] {
			n.held[k] = v
		}
	}
	intersectInto(n.rel, o.rel)
	return n
}

func (s lockState) equal(o lockState) bool {
	if len(s.held) != len(o.held) || len(s.rel) != len(o.rel) {
		return false
	}
	for k, v := range s.held {
		if o.held[k] != v {
			return false
		}
	}
	for k := range s.rel {
		if !o.rel[k] {
			return false
		}
	}
	return true
}

// transfer updates the lock state across one instruction.
func transfer(u *analysis.Unit, in lockState, ins ssa.Instr) ssa.Fact {
	out := in
	mutated := false
	ensure := func() {
		if !mutated {
			out = in.clone()
			mutated = true
		}
	}
	forEachCall(ins, func(call *ast.CallExpr) {
		op, class, ok := mutexOp(u.Info, call)
		if !ok || class == "" {
			return
		}
		ensure()
		switch op {
		case opLock:
			if out.held[class] < maxDepth {
				out.held[class]++
			}
		case opUnlock:
			if n := out.held[class]; n > 1 {
				out.held[class]--
			} else if n == 1 {
				delete(out.held, class)
			} else {
				// Releasing a lock this function never acquired: it was
				// inherited from the caller (documented hand-off).
				out.rel[class] = true
			}
		}
	})
	return out
}

func cloneSet(s map[string]bool) map[string]bool {
	n := make(map[string]bool, len(s))
	for k := range s {
		n[k] = true
	}
	return n
}

// intersectInto removes from dst every class absent from src.
func intersectInto(dst, src map[string]bool) {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
}

// forEachCall visits the calls an instruction *executes*: all calls in a
// plain statement or decomposed expression; for a defer statement only
// the argument expressions (the deferred call itself runs in the exit
// block's Deferred replay); for a go statement only the arguments (the
// call runs on another goroutine).
func forEachCall(ins ssa.Instr, visit func(*ast.CallExpr)) {
	if ins.Deferred {
		// Replay of a deferred call at exit: arguments were evaluated at
		// the registration point; only the call itself executes here.
		if call, ok := ins.Node.(*ast.CallExpr); ok {
			visit(call)
		}
		return
	}
	switch n := ins.Node.(type) {
	case *ast.DeferStmt:
		for _, arg := range n.Call.Args {
			ssa.Calls(arg, visit)
		}
	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			ssa.Calls(arg, visit)
		}
	default:
		ssa.Calls(ins.Node, visit)
	}
}

// Mutex operations.
const (
	opLock   = "lock"
	opUnlock = "unlock"
)

// mutexOp classifies a call as a mutex acquisition or release and names
// the lock class, or ok=false for any other call. class is "" when the
// mutex cannot be named (local variable, parameter).
func mutexOp(info *types.Info, call *ast.CallExpr) (op, class string, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	callee := typeutil.Callee(info, call)
	if callee == nil {
		return "", "", false
	}
	switch {
	case typeutil.IsMethod(callee, "sync", "Mutex", "Lock"),
		typeutil.IsMethod(callee, "sync", "Mutex", "TryLock"),
		typeutil.IsMethod(callee, "sync", "RWMutex", "Lock"),
		typeutil.IsMethod(callee, "sync", "RWMutex", "TryLock"),
		typeutil.IsMethod(callee, "sync", "RWMutex", "RLock"),
		typeutil.IsMethod(callee, "sync", "RWMutex", "TryRLock"):
		op = opLock
	case typeutil.IsMethod(callee, "sync", "Mutex", "Unlock"),
		typeutil.IsMethod(callee, "sync", "RWMutex", "Unlock"),
		typeutil.IsMethod(callee, "sync", "RWMutex", "RUnlock"):
		op = opUnlock
	default:
		return "", "", false
	}
	return op, classOf(info, fun), true
}

// classOf names the lock class of the mutex a method call selects:
// "pkg.Type.field" for a struct-field mutex (including one promoted from
// an embedded sync.Mutex), "pkg.var" for a package-level mutex, "" when
// unnameable.
func classOf(info *types.Info, fun *ast.SelectorExpr) string {
	recv := ast.Unparen(fun.X)
	t := info.TypeOf(recv)
	if t == nil {
		return ""
	}
	if isMutexType(t) {
		// The receiver expression *is* the mutex; name it by where it
		// lives.
		switch x := recv.(type) {
		case *ast.SelectorExpr:
			// owner.field — the owner's type names the class.
			ot := info.TypeOf(x.X)
			if name := namedOf(ot); name != "" {
				return name + "." + x.Sel.Name
			}
			// Qualified package-level var (pkg.mu).
			if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		case *ast.Ident:
			if obj, ok := info.Uses[recv.(*ast.Ident)].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		return ""
	}
	// Promoted method of an embedded mutex: name the embedded field on
	// the receiver's named type.
	if sel, ok := info.Selections[fun]; ok {
		owner := namedOf(sel.Recv())
		if owner == "" {
			return ""
		}
		st, ok := derefUnderlying(sel.Recv()).(*types.Struct)
		if !ok {
			return ""
		}
		idx := sel.Index()
		if len(idx) < 2 || idx[0] >= st.NumFields() {
			return ""
		}
		return owner + "." + st.Field(idx[0]).Name()
	}
	return ""
}

// namedOf returns "pkgName.TypeName" for a (possibly pointer) named type.
func namedOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

func derefUnderlying(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.Underlying()
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// transitiveAcquires closes the per-function acquisition summaries over
// synchronous calls. A class reached through a call site carries the
// union of the site's must-released set and the callee's; joins of
// several sites intersect, so rel stays a must property.
func transitiveAcquires(direct map[string]map[string]*acqInfo, calleesOf map[string][]calleeSite) map[string]map[string]*acqInfo {
	acq := map[string]map[string]*acqInfo{}
	for id, classes := range direct {
		s := map[string]*acqInfo{}
		for c, a := range classes {
			s[c] = &acqInfo{pos: a.pos, rel: cloneSet(a.rel)}
		}
		acq[id] = s
	}
	for changed := true; changed; {
		changed = false
		for id, sites := range calleesOf {
			for _, site := range sites {
				for c, ca := range acq[site.callee.ID] {
					cand := cloneSet(site.rel)
					for k := range ca.rel {
						cand[k] = true
					}
					s := acq[id]
					if s == nil {
						s = map[string]*acqInfo{}
						acq[id] = s
					}
					cur, ok := s[c]
					if !ok {
						s[c] = &acqInfo{pos: ca.pos, rel: cand}
						changed = true
						continue
					}
					for k := range cur.rel {
						if !cand[k] {
							delete(cur.rel, k)
							changed = true
						}
					}
				}
			}
		}
	}
	return acq
}

// readOrder parses the hierarchy file: one "From -> To" per line, #
// comments, blank lines.
func readOrder(path string) (map[edge]bool, map[edge]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return map[edge]bool{}, map[edge]int{}, err
	}
	declared := map[edge]bool{}
	lines := map[edge]int{}
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		from, to, ok := strings.Cut(line, "->")
		if !ok {
			continue
		}
		e := edge{strings.TrimSpace(from), strings.TrimSpace(to)}
		declared[e] = true
		if _, dup := lines[e]; !dup {
			lines[e] = i + 1
		}
	}
	return declared, lines, nil
}

// cycles returns every elementary cycle's class list (first == last),
// deterministically, by DFS from each node in sorted order; each cycle is
// reported once, rooted at its smallest class.
func cycles(edges map[edge]bool) [][]string {
	adj := map[string][]string{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out [][]string
	seen := map[string]bool{} // canonical cycle keys
	var path []string
	onPath := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		path = append(path, n)
		onPath[n] = true
		for _, m := range adj[n] {
			if onPath[m] {
				// Found a cycle: the path suffix from m.
				i := 0
				for path[i] != m {
					i++
				}
				cyc := append(append([]string{}, path[i:]...), m)
				if k := canon(cyc); !seen[k] {
					seen[k] = true
					out = append(out, cyc)
				}
				continue
			}
			dfs(m)
		}
		path = path[:len(path)-1]
		delete(onPath, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
	return out
}

// canon rotates a cycle (first == last) to start at its smallest element.
func canon(cyc []string) string {
	body := cyc[:len(cyc)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}
