package lockorder_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/lockorder"
)

func TestCycle(t *testing.T) {
	lintest.RunGlobal(t, "../../../testdata", lockorder.Analyzer, "lockorder/cycle/a")
}

func TestUndeclaredCrossPackage(t *testing.T) {
	lintest.RunGlobal(t, "../../../testdata", lockorder.Analyzer,
		"lockorder/undeclared/a", "lockorder/undeclared/b")
}

func TestStaleDeclaration(t *testing.T) {
	lintest.RunGlobal(t, "../../../testdata", lockorder.Analyzer, "lockorder/stale/a")
}

func TestHandoffProducesNoEdge(t *testing.T) {
	lintest.RunGlobal(t, "../../../testdata", lockorder.Analyzer, "lockorder/handoff/a")
}
