// Package poolmisuse checks sync.Pool usage against the buffer-pool
// ownership rules the hot paths rely on (DESIGN.md):
//
//   - Put of a bare slice value is flagged: a slice is three words, so
//     every Put boxes the header into an interface allocation — the very
//     garbage the pool exists to avoid. Pool a pointer to the slice (or a
//     small struct) instead.
//
//   - Use of a value after it was Put back is flagged (same block, after
//     the Put, before any reassignment): once Put returns, the pool may
//     hand the value to another goroutine, and continued use is a data
//     race that -race only catches if the interleaving actually happens.
package poolmisuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/typeutil"
)

// Analyzer is the poolmisuse check.
var Analyzer = &analysis.Analyzer{
	Name: "poolmisuse",
	Doc:  "sync.Pool hygiene: no slice-valued Puts (header boxing allocates), no use of a value after Put returns it to the pool",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkBlock(pass, block)
			return true
		})
	}
	return nil
}

// checkBlock handles both checks over one statement list. Nested blocks are
// visited by the ast.Inspect in run, so only direct statements are scanned
// for the use-after-put ordering.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, st := range block.List {
		call := putCall(pass, st)
		if call == nil || len(call.Args) != 1 {
			continue
		}
		arg := ast.Unparen(call.Args[0])
		if t := pass.TypesInfo.TypeOf(arg); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				pass.Reportf(call.Pos(), "sync.Pool.Put of a slice value boxes the slice header, allocating on every Put; pool a pointer to the slice (*[]byte) or a wrapper struct instead")
			}
		}
		// Use-after-put: the Put argument (an identifier, or &ident)
		// referenced again later in the same block before reassignment.
		obj := putObject(pass, arg)
		if obj == nil {
			continue
		}
		for _, later := range block.List[i+1:] {
			if reassigns(pass, later, obj) {
				break
			}
			if pos, used := uses(pass, later, obj); used {
				pass.Reportf(pos, "%q is used after being Put back in the pool; the pool may already have handed it to another goroutine", obj.Name())
				break
			}
		}
	}
}

// putCall returns the sync.Pool Put call if st is one, else nil.
func putCall(pass *analysis.Pass, st ast.Stmt) *ast.CallExpr {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if !typeutil.IsMethod(typeutil.Callee(pass.TypesInfo, call), "sync", "Pool", "Put") {
		return nil
	}
	return call
}

// putObject resolves the local variable being pooled: `x` or `&x`.
func putObject(pass *analysis.Pass, arg ast.Expr) types.Object {
	if u, ok := arg.(*ast.UnaryExpr); ok {
		arg = ast.Unparen(u.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// reassigns reports whether st assigns a fresh value to obj, after which
// continued use is legitimate.
func reassigns(pass *analysis.Pass, st ast.Stmt, obj types.Object) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}

// uses reports the first reference to obj inside st. References on the
// left-hand side of assignments are handled by reassigns before this runs.
func uses(pass *analysis.Pass, st ast.Stmt, obj types.Object) (pos token.Pos, used bool) {
	var found *ast.Ident
	ast.Inspect(st, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = id
		}
		return found == nil
	})
	if found == nil {
		return token.NoPos, false
	}
	return found.Pos(), true
}
