package poolmisuse_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/poolmisuse"
)

func TestPoolmisuse(t *testing.T) {
	lintest.Run(t, "../../../testdata", "poolmisuse/a", poolmisuse.Analyzer)
}
