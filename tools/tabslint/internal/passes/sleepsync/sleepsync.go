// Package sleepsync hunts sleep-based synchronization, the root of every
// flaky test this repo has had to de-flake:
//
//   - In non-test files of internal packages, any time.Sleep is flagged.
//     Production code has the simulated clock, condition variables, and
//     channels; a wall-clock sleep is either masking a race or modelling
//     latency (the one legitimate case — annotate it with
//     //tabslint:ignore sleepsync and the reason).
//
//   - In test files, a time.Sleep directly followed by a test assertion
//     (t.Error/t.Fatal family, directly or as the body of an if) is
//     flagged: the assertion races the goroutine the sleep was "waiting"
//     for. Synchronize on a channel, sync.WaitGroup, or poll with a
//     deadline instead.
package sleepsync

import (
	"go/ast"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/typeutil"
)

// Analyzer is the sleepsync check.
var Analyzer = &analysis.Analyzer{
	Name: "sleepsync",
	Doc:  "time.Sleep must not substitute for synchronization (internal non-test code; assert-after-sleep in tests)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	internal := strings.Contains(pass.ImportPath+"/", "internal/")
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			checkTestFile(pass, f)
		} else if internal {
			checkLibFile(pass, f)
		}
	}
	return nil
}

// checkLibFile flags every sleep in internal production code.
func checkLibFile(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSleep(pass, call) {
			pass.Reportf(call.Pos(), "time.Sleep in internal non-test code: synchronize with channels/cond-vars or the simulated clock, or annotate the latency model with //tabslint:ignore sleepsync")
		}
		return true
	})
}

// checkTestFile flags a sleep statement whose successor asserts.
func checkTestFile(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok || !isSleep(pass, call) || i+1 >= len(block.List) {
				continue
			}
			if assertsImmediately(pass, block.List[i+1]) {
				pass.Reportf(call.Pos(), "test asserts directly after a bare time.Sleep: the assertion races whatever the sleep waits for; synchronize on a channel/WaitGroup or poll with a deadline")
			}
		}
		return true
	})
}

// assertsImmediately reports whether st is a test assertion or an if
// whose body asserts (the `if got != want { t.Fatalf(...) }` shape).
func assertsImmediately(pass *analysis.Pass, st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		return ok && isAssertCall(pass, call)
	case *ast.IfStmt:
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isAssertCall(pass, call) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

func isSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	return typeutil.IsFunc(typeutil.Callee(pass.TypesInfo, call), "time", "Sleep")
}

// isAssertCall matches the testing.T/B failure family. The methods live
// on the embedded testing.common.
var assertNames = map[string]bool{
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Fail": true, "FailNow": true,
}

func isAssertCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || !assertNames[fn.Name()] || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "testing" {
		return false
	}
	p, _ := typeutil.RecvOf(fn)
	return p == "testing"
}
