package sleepsync_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/sleepsync"
)

func TestSleepsyncInternal(t *testing.T) {
	lintest.Run(t, "../../../testdata", "sleepsync/internal/a", sleepsync.Analyzer)
}

func TestSleepsyncOutsideInternal(t *testing.T) {
	lintest.Run(t, "../../../testdata", "sleepsync/pacer", sleepsync.Analyzer)
}
