// Package spanleak enforces the trace-span lifecycle invariant: every
// *trace.ActiveSpan obtained from Tracer.Begin must reach End or EndErr
// on every control-flow path of the function that began it. A span that
// is begun and never ended silently vanishes from the ring — exactly the
// observability hole fixed by hand twice before this analyzer existed
// (an early-return leak in 2PC round handling, and a read-error path in
// the WAL force that returned before ending its span).
//
// The check is a structural flow scan over the function body, not a full
// CFG: branches of if/for/switch/select are walked with copies of the
// tracking state and re-joined pessimistically. Spans that escape the
// function — stored, passed to another call, returned, or captured by a
// non-defer closure — are conservatively treated as handed off and not
// reported. `defer sp.End()` (directly or inside a deferred closure)
// covers every exit.
package spanleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/typeutil"
)

// TracerPath is the package whose Begin method mints spans.
const TracerPath = "tabs/internal/trace"

// Analyzer is the spanleak check.
var Analyzer = &analysis.Analyzer{
	Name: "spanleak",
	Doc:  "trace spans from Tracer.Begin must be ended on all control-flow paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// status is the per-span abstract state at a program point.
type status int

const (
	inactive status = iota // span not (yet) begun on this path
	unended                // begun, not yet ended: a return here leaks
	ended                  // definitely ended on this path
	escaped                // handed off (stored/passed/returned/deferred)
)

// join merges two branch states, pessimistically preferring the state
// that keeps reporting: a path that may still hold an unended span taints
// the merge.
func join(a, b status) status {
	if a == b {
		return a
	}
	if a == unended || b == unended {
		return unended
	}
	if a == escaped || b == escaped {
		return escaped
	}
	return ended // {inactive, ended} — nothing pending either way
}

// tracker follows one span variable through a function body.
type tracker struct {
	pass    *analysis.Pass
	obj     types.Object    // the span variable
	root    *ast.AssignStmt // the statement that begins the span
	rootPos token.Pos
}

// checkFunc finds span roots in body and flow-scans each.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var roots []*tracker
	ast.Inspect(body, func(n ast.Node) bool {
		// Do not descend into nested function literals: they are
		// checked as their own functions by run.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if beginsSpan(pass.TypesInfo, call) && !chainEndsSpan(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "span begun and immediately discarded: chain a final End() or assign the span")
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !beginsSpan(pass.TypesInfo, call) {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true // assigned into a field/index: escaped
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "span begun and assigned to _: it can never be ended")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				roots = append(roots, &tracker{pass: pass, obj: obj, root: st, rootPos: call.Pos()})
			}
		}
		return true
	})
	for _, tr := range roots {
		out, terminated := tr.scanStmts(body.List, inactive)
		if out == unended && !terminated {
			tr.pass.Reportf(tr.rootPos, "span %q is not ended before the function falls off the end", tr.obj.Name())
		}
	}
}

// beginsSpan reports whether the innermost call of a method chain is
// trace.(*Tracer).Begin.
func beginsSpan(info *types.Info, call *ast.CallExpr) bool {
	for {
		fn := typeutil.Callee(info, call)
		if typeutil.IsMethod(fn, TracerPath, "Tracer", "Begin") {
			return true
		}
		// Walk down chains like tr.Begin(...).SetTID(x).Annotatef(...):
		// the receiver of each span method is the previous call.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		call = inner
	}
}

// chainEndsSpan reports whether the outermost call of a chain is
// End/EndErr on an ActiveSpan.
func chainEndsSpan(info *types.Info, call *ast.CallExpr) bool {
	fn := typeutil.Callee(info, call)
	return isEndMethod(fn)
}

func isEndMethod(fn *types.Func) bool {
	return typeutil.IsMethod(fn, TracerPath, "ActiveSpan", "End") ||
		typeutil.IsMethod(fn, TracerPath, "ActiveSpan", "EndErr")
}

// scanStmts walks one statement list. It returns the state after the list
// and whether the list always transfers control away (return, panic,
// break, continue, goto).
func (tr *tracker) scanStmts(list []ast.Stmt, st status) (status, bool) {
	for _, s := range list {
		var term bool
		st, term = tr.scanStmt(s, st)
		if term {
			return st, true
		}
		if st == escaped {
			return escaped, false
		}
	}
	return st, false
}

// scanStmt processes one statement, returning the post-state and whether
// the statement always transfers control away.
func (tr *tracker) scanStmt(s ast.Stmt, st status) (status, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == tr.root {
			return unended, false
		}
		return tr.simple(s, st), false
	case *ast.ReturnStmt:
		if tr.mentions(s) {
			return escaped, true // span returned to the caller
		}
		if st == unended {
			tr.pass.Reportf(s.Pos(), "span %q (begun at %s) is not ended on this return path",
				tr.obj.Name(), tr.pass.Fset.Position(tr.rootPos))
		}
		return st, true
	case *ast.BranchStmt:
		return st, true // break/continue/goto leave this list
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanic(tr.pass.TypesInfo, call) {
			return st, true
		}
		return tr.simple(s, st), false
	case *ast.DeferStmt:
		return tr.deferStmt(s, st), false
	case *ast.GoStmt:
		if tr.mentions(s) {
			return escaped, false
		}
		return st, false
	case *ast.BlockStmt:
		return tr.scanStmts(s.List, st)
	case *ast.LabeledStmt:
		return tr.scanStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			var term bool
			st, term = tr.scanStmt(s.Init, st)
			if term || st == escaped {
				return st, term
			}
		}
		thenOut, thenTerm := tr.scanStmts(s.Body.List, st)
		elseOut, elseTerm := st, false
		if s.Else != nil {
			elseOut, elseTerm = tr.scanStmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return join(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = tr.scanStmt(s.Init, st)
		}
		bodyOut, _ := tr.scanStmts(s.Body.List, st)
		if s.Cond == nil && bodyAlwaysLeaves(s.Body) {
			// `for { ... }` with no normal exit: the loop body's exits
			// were checked; nothing falls through.
			return bodyOut, true
		}
		return join(st, bodyOut), false
	case *ast.RangeStmt:
		bodyOut, _ := tr.scanStmts(s.Body.List, st)
		return join(st, bodyOut), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return tr.scanCases(s, st)
	default:
		return tr.simple(s, st), false
	}
}

// scanCases handles switch/type-switch/select: each clause branches from
// the same entry state; the no-clause-taken path keeps the entry state
// unless a default clause exists.
func (tr *tracker) scanCases(s ast.Stmt, st status) (status, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = tr.scanStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = tr.scanStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	out := status(-1)
	allTerm := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			body = c.Body
		}
		cOut, cTerm := tr.scanStmts(body, st)
		if cTerm {
			continue
		}
		allTerm = false
		if out == status(-1) {
			out = cOut
		} else {
			out = join(out, cOut)
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = hasDefault || len(clauses) == 0
		// A select always takes some clause (blocking otherwise); the
		// "no clause" fallthrough only exists for switches.
		if allTerm && !hasDefault && len(clauses) > 0 {
			return st, true
		}
	} else if !hasDefault {
		// Switch without default: the untaken path keeps the entry state.
		allTerm = false
		if out == status(-1) {
			out = st
		} else {
			out = join(out, st)
		}
	}
	if allTerm && len(clauses) > 0 {
		return st, true
	}
	if out == status(-1) {
		out = st
	}
	return out, false
}

// deferStmt classifies a defer: deferring End/EndErr (directly or via a
// closure that ends the span) covers every exit; any other deferred use
// of the span is a conservative escape.
func (tr *tracker) deferStmt(s *ast.DeferStmt, st status) status {
	if tr.callEndsSpan(s.Call) {
		return escaped // every exit covered
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok && tr.mentionsNode(lit) {
		return escaped // deferred closure owns the span now
	}
	if tr.mentions(s) {
		return escaped
	}
	return st
}

// simple handles a non-branching statement: an End/EndErr call on the
// span marks the path ended; any other use of the span is an escape.
func (tr *tracker) simple(s ast.Stmt, st status) status {
	endsHere := false
	escapes := false
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if tr.mentionsNode(lit) {
				escapes = true
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tr.callEndsSpan(call) {
			endsHere = true
			// Still inspect arguments (EndErr(err) has no span uses).
		}
		return true
	})
	if !endsHere && !escapes && tr.mentions(s) && !tr.onlySpanMethodUses(s) {
		escapes = true
	}
	if escapes {
		return escaped
	}
	if endsHere && st != inactive {
		return ended
	}
	return st
}

// callEndsSpan reports whether call is sp.End()/sp.EndErr(...) — possibly
// at the end of an annotation chain — where the chain's base is the
// tracked variable.
func (tr *tracker) callEndsSpan(call *ast.CallExpr) bool {
	if !isEndMethod(typeutil.Callee(tr.pass.TypesInfo, call)) {
		return false
	}
	return tr.chainBaseIsObj(call)
}

// chainBaseIsObj walks a method chain sp.M1().M2()... down to its base
// expression and reports whether that base is the tracked variable.
func (tr *tracker) chainBaseIsObj(call *ast.CallExpr) bool {
	expr := ast.Expr(call)
	for {
		c, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok {
			break
		}
		sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		expr = sel.X
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && tr.isObj(id)
}

// onlySpanMethodUses reports whether every mention of the span in s is as
// the receiver of an ActiveSpan method (Annotate/SetTID/... chains).
func (tr *tracker) onlySpanMethodUses(s ast.Node) bool {
	ok := true
	ast.Inspect(s, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if isSel {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && tr.isObj(id) {
				if selInfo, hasSel := tr.pass.TypesInfo.Selections[sel]; hasSel {
					if fn, _ := selInfo.Obj().(*types.Func); fn != nil {
						if p, t := typeutil.RecvOf(fn); p == TracerPath && t == "ActiveSpan" {
							return false // a sanctioned use; skip the ident below
						}
					}
				}
				ok = false
				return false
			}
		}
		if id, isID := n.(*ast.Ident); isID && tr.isObj(id) {
			ok = false
		}
		return true
	})
	return ok
}

func (tr *tracker) isObj(id *ast.Ident) bool {
	return tr.pass.TypesInfo.Uses[id] == tr.obj || tr.pass.TypesInfo.Defs[id] == tr.obj
}

func (tr *tracker) mentions(n ast.Node) bool { return tr.mentionsNode(n) }

func (tr *tracker) mentionsNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && tr.isObj(id) {
			found = true
		}
		return !found
	})
	return found
}

// bodyAlwaysLeaves reports whether a loop body's final statement
// unconditionally transfers control (so `for { ... }` cannot fall
// through to the loop exit).
func bodyAlwaysLeaves(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.GOTO
	}
	return false
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "panic"
	}
	return false
}
