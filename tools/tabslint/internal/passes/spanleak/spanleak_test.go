package spanleak_test

import (
	"testing"

	"tabs/tools/tabslint/internal/lintest"
	"tabs/tools/tabslint/internal/passes/spanleak"
)

func TestSpanleak(t *testing.T) {
	lintest.Run(t, "../../../testdata", "spanleak/a", spanleak.Analyzer)
}
