package ssa

import (
	"go/ast"
	"go/token"
)

// buildCFG lowers fn.Body into basic blocks. Control statements are
// decomposed: conditions, switch tags and range operands become
// instructions in the block that evaluates them; bodies get their own
// blocks with the obvious edges. Deferred calls are replayed in LIFO
// order in the exit block (see the package comment).
func buildCFG(fn *Function) {
	b := &cfgBuilder{fn: fn, labels: map[string]*Block{}}
	b.entry = b.newBlock()
	b.exit = &Block{}
	b.cur = b.entry
	b.stmt(fn.Body)
	b.jump(b.exit)
	for _, g := range b.gotos {
		if to, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, to)
		}
	}
	// Replay deferred calls at exit, last registered first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.exit.Instrs = append(b.exit.Instrs, Instr{Node: b.defers[i], Deferred: true})
	}
	b.exit.Index = len(b.blocks)
	b.blocks = append(b.blocks, b.exit)
	for _, blk := range b.blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	fn.Entry, fn.Exit, fn.Blocks = b.entry, b.exit, b.blocks
}

// cfgBuilder carries the construction state for one function.
type cfgBuilder struct {
	fn     *Function
	blocks []*Block
	entry  *Block
	exit   *Block
	// cur is the block receiving instructions; nil after a terminator
	// (return/break/continue/goto) until the next reachable point.
	cur *Block
	// targets is the break/continue stack; entries carry the pending
	// label (set by a LabeledStmt wrapping a loop/switch/select).
	targets []target
	labels  map[string]*Block
	gotos   []pendingGoto
	defers  []*ast.CallExpr
	// pendingLabel transfers a statement label to the loop or switch it
	// wraps so labeled break/continue resolve.
	pendingLabel string
}

type target struct {
	label    string
	brk      *Block // nil for loops-only constructs? always set
	cont     *Block // nil for switch/select
	isSwitch bool
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// current returns the block receiving instructions, creating an
// unreachable fresh block after a terminator so construction can proceed.
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.current()
	blk.Instrs = append(blk.Instrs, Instr{Node: n})
}

// jump ends the current block with an edge to to.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
	b.cur = nil
}

// branchTo adds an edge without ending the block (if/switch fanout).
func (b *cfgBuilder) branchTo(to *Block) {
	b.current().Succs = append(b.current().Succs, to)
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.labels[s.Label.Name] = lb
		b.jump(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.emit(s.Cond)
		then, after := b.newBlock(), b.newBlock()
		b.branchTo(then)
		if s.Else != nil {
			els := b.newBlock()
			b.branchTo(els)
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.branchTo(after)
		}
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		b.emit(s.Cond)
		body, after := b.newBlock(), b.newBlock()
		b.branchTo(body)
		b.branchTo(after)
		post := b.newBlock()
		b.targets = append(b.targets, target{label: label, brk: after, cont: post})
		b.cur = body
		b.stmt(s.Body)
		b.jump(post)
		b.cur = post
		b.stmt(s.Post)
		b.jump(head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		// The range operand and per-iteration key/value binding are
		// evaluated at the head; emitting the whole RangeStmt would drag
		// the body along, so a RangeHeader wrapper carries just the
		// header.
		b.emit(&RangeHeader{Range: s})
		body, after := b.newBlock(), b.newBlock()
		b.branchTo(body)
		b.branchTo(after)
		b.targets = append(b.targets, target{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)
	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		b.targets = append(b.targets, target{label: label, brk: after, isSwitch: true})
		head := b.current()
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			b.stmt(comm.Comm)
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.jump(after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after
		if len(s.Body.List) == 0 {
			head.Succs = append(head.Succs, after)
		}
	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.emit(s) // argument evaluation point
		b.defers = append(b.defers, s.Call)
	case *ast.GoStmt:
		b.emit(s)
	default:
		// Simple statements: expr, assign, incdec, send, decl, empty.
		b.emit(s)
	}
}

// switchStmt lowers expression and type switches, including fallthrough.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, clauses = s.Init, s.Tag, s.Body.List
	case *ast.TypeSwitchStmt:
		init, tag, clauses = s.Init, s.Assign, s.Body.List
	}
	b.stmt(init)
	if tag != nil {
		b.emit(tag)
	}
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after, isSwitch: true})
	head := b.current()
	// Build case blocks first so fallthrough can edge to the next body.
	var bodies []*Block
	hasDefault := false
	for range clauses {
		bodies = append(bodies, b.newBlock())
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		head.Succs = append(head.Succs, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(bodies) {
					b.jump(bodies[i+1])
				}
				continue
			}
			b.stmt(st)
		}
		b.jump(after)
	}
	if !hasDefault || len(clauses) == 0 {
		head.Succs = append(head.Succs, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// branch lowers break/continue/goto.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.jump(t.brk)
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				b.jump(t.cont)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if to, ok := b.labels[label]; ok {
			b.jump(to)
		} else {
			// Forward goto: the label block does not exist yet; record
			// the edge for resolution at the end of buildCFG.
			b.gotos = append(b.gotos, pendingGoto{from: b.current(), label: label})
			b.cur = nil
		}
	}
}

// takeLabel consumes the label a LabeledStmt attached for the construct
// being lowered.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}
