package ssa

// Fact is an analysis-defined dataflow fact. Facts must be treated as
// immutable by Transfer (clone before changing); the engine never copies
// them itself.
type Fact any

// Flow defines one forward dataflow problem over a Function's CFG.
type Flow struct {
	// Init is the fact at function entry.
	Init Fact
	// Transfer produces the fact after executing ins with fact in. It
	// must not mutate in.
	Transfer func(in Fact, ins Instr) Fact
	// Merge joins two facts at a block join. It must not mutate either
	// argument. Merge is never called with nil arguments.
	Merge func(a, b Fact) Fact
	// Equal reports fact equality; it bounds the fixpoint iteration.
	Equal func(a, b Fact) bool
}

// maxPasses is a safety valve against lattices that fail to converge; the
// set-valued facts the passes use converge in a handful of passes.
const maxPasses = 64

// Forward solves the dataflow problem to a fixpoint, then replays each
// reachable block once, calling visit with the fact in force immediately
// before every instruction. Blocks unreachable from the entry (code after
// return) are not visited.
func (fn *Function) Forward(fl Flow, visit func(in Fact, ins Instr, blk *Block)) {
	in := fn.solveIn(fl)
	if visit == nil {
		return
	}
	for _, blk := range fn.Blocks {
		fact := in[blk.Index]
		if fact == nil {
			continue // unreachable
		}
		for _, ins := range blk.Instrs {
			visit(fact, ins, blk)
			fact = fl.Transfer(fact, ins)
		}
	}
}

// ExitFact solves the problem and returns the fact at the end of the exit
// block (after deferred-call replay), or nil if the exit is unreachable.
func (fn *Function) ExitFact(fl Flow) Fact {
	in := fn.solveIn(fl)
	out := in[fn.Exit.Index]
	if out == nil {
		return nil
	}
	for _, ins := range fn.Exit.Instrs {
		out = fl.Transfer(out, ins)
	}
	return out
}

// solveIn computes the per-block entry facts by worklist iteration.
func (fn *Function) solveIn(fl Flow) []Fact {
	in := make([]Fact, len(fn.Blocks))
	in[fn.Entry.Index] = fl.Init
	work := []*Block{fn.Entry}
	queued := make([]bool, len(fn.Blocks))
	queued[fn.Entry.Index] = true
	for pass := 0; len(work) > 0 && pass < maxPasses*len(fn.Blocks); pass++ {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := in[blk.Index]
		for _, ins := range blk.Instrs {
			out = fl.Transfer(out, ins)
		}
		for _, s := range blk.Succs {
			next := out
			if cur := in[s.Index]; cur != nil {
				next = fl.Merge(cur, out)
				if fl.Equal(cur, next) {
					continue
				}
			}
			in[s.Index] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}
