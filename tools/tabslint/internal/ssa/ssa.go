// Package ssa is tabslint's miniature of the role golang.org/x/tools/go/ssa
// plays in the upstream analysis stack: it lowers every type-checked
// function body in a load into a per-function control-flow graph of
// instructions, ready for the interprocedural passes (lockorder, cowviol,
// bufown) to run dataflow over.
//
// The x/tools module is deliberately not a dependency — the repo builds
// offline with the bare toolchain — so this package carries exactly the
// fragment of SSA form those passes consume: instructions in CFG order
// with object-keyed def/use information from go/types. There are no phi
// nodes and no virtual registers; dataflow facts are keyed by
// *types.Object (or by derived string identities such as lock classes)
// and merged at block joins by the engine in flow.go, which is the
// standard dense-dataflow equivalent of pruned SSA for set-valued facts.
//
// Two modeling decisions matter to the passes:
//
//   - defer is executed, not just registered. Each deferred call appears
//     twice: once as its *ast.DeferStmt at the registration point (where
//     argument expressions are evaluated) and once as a Deferred
//     instruction in the function's exit block, in LIFO order — so
//     `mu.Lock(); defer mu.Unlock(); defer f()` correctly runs f with mu
//     still held, and the unlock is seen on every path out.
//
//   - function literals are functions. Every *ast.FuncLit gets its own
//     Function (and CFG); the enclosing function's instruction stream
//     never descends into a literal's body. Inspect in this package
//     honours that boundary.
package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tabs/tools/tabslint/internal/analysis"
)

// Program is every function body in a load, CFG-lowered.
type Program struct {
	Fset  *token.FileSet
	Funcs []*Function

	byID  map[string]*Function
	byLit map[*ast.FuncLit]*Function
	// methods indexes module methods by receiver key ("pkgpath.TypeName")
	// then method name; the callgraph's CHA resolution reads it.
	methods map[string]map[string]*Function
}

// Function is one function body with its control-flow graph.
type Function struct {
	// ID is a stable cross-unit identity: "pkgpath.Name" for functions,
	// "pkgpath.(TypeName).Name" for methods (pointer-insensitive),
	// parentID + "$litN" for function literals. Units are type-checked
	// independently, so *types.Func object identity does not survive a
	// package being both analyzed and imported; IDs do.
	ID   string
	Unit *analysis.Unit
	// Obj is the declared function object, nil for literals.
	Obj  *types.Func
	Decl ast.Node // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt
	Sig  *types.Signature
	// Doc is the declaration's doc comment (directives like
	// //tabslint:pool-get live here); nil for literals.
	Doc *ast.CommentGroup

	Entry *Block
	Exit  *Block
	// Blocks holds every block, Entry first, Exit last.
	Blocks []*Block

	// Parent is the enclosing function for literals, nil otherwise.
	Parent *Function
	// InTestFile marks functions declared in _test.go files; the
	// whole-program passes skip them.
	InTestFile bool
}

// Block is one basic block.
type Block struct {
	Index  int
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block
}

// Instr is one instruction: a simple statement or a decomposed control
// expression (an if/for condition, a switch tag, a range operand), in
// execution order.
type Instr struct {
	Node ast.Node
	// Deferred marks the synthetic execution of a deferred call in the
	// exit block. Node is the deferred *ast.CallExpr.
	Deferred bool
}

// Build lowers every function body in units. Test files are lowered too
// (InTestFile marks them); passes choose whether to visit them.
func Build(units []*analysis.Unit) *Program {
	var fset *token.FileSet
	if len(units) > 0 {
		fset = units[0].Fset
	}
	p := &Program{
		Fset:    fset,
		byID:    map[string]*Function{},
		byLit:   map[*ast.FuncLit]*Function{},
		methods: map[string]map[string]*Function{},
	}
	for _, u := range units {
		for _, f := range u.Files {
			pos := u.Fset.Position(f.Pos())
			isTest := strings.HasSuffix(pos.Filename, "_test.go")
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := u.Info.Defs[fd.Name].(*types.Func)
				fn := &Function{
					ID:         declID(u, fd, obj),
					Unit:       u,
					Obj:        obj,
					Decl:       fd,
					Body:       fd.Body,
					Doc:        fd.Doc,
					InTestFile: isTest,
				}
				if obj != nil {
					fn.Sig, _ = obj.Type().(*types.Signature)
				}
				p.add(fn)
			}
		}
	}
	return p
}

// add registers fn, builds its CFG, and recursively registers the
// function literals its body contains.
func (p *Program) add(fn *Function) {
	// A redeclared ID (same package loaded as two variants would be a
	// loader bug; platform-specific file pairs do not exist here) keeps
	// the first body.
	if _, dup := p.byID[fn.ID]; dup {
		return
	}
	p.byID[fn.ID] = fn
	p.Funcs = append(p.Funcs, fn)
	buildCFG(fn)
	if fn.Obj != nil && fn.Sig != nil && fn.Sig.Recv() != nil {
		if rk := recvKey(fn.Sig.Recv().Type()); rk != "" {
			m := p.methods[rk]
			if m == nil {
				m = map[string]*Function{}
				p.methods[rk] = m
			}
			m[fn.Obj.Name()] = fn
		}
	}
	p.lowerNested(fn)
}

// lowerNested registers the function literals inside fn's body, nesting
// IDs parent$litN; deeper literals recurse against their immediate parent.
func (p *Program) lowerNested(fn *Function) {
	n := 0
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		if _, done := p.byLit[lit]; done {
			return false
		}
		n++
		child := &Function{
			ID:         fmt.Sprintf("%s$lit%d", fn.ID, n),
			Unit:       fn.Unit,
			Decl:       lit,
			Body:       lit.Body,
			Parent:     fn,
			InTestFile: fn.InTestFile,
		}
		if t, ok := fn.Unit.Info.TypeOf(lit).(*types.Signature); ok {
			child.Sig = t
		}
		p.byID[child.ID] = child
		p.byLit[lit] = child
		p.Funcs = append(p.Funcs, child)
		buildCFG(child)
		p.lowerNested(child)
		return false
	})
}

// FuncByID returns the function with the given stable ID, or nil.
func (p *Program) FuncByID(id string) *Function { return p.byID[id] }

// FuncOfLit returns the Function lowered from lit, or nil.
func (p *Program) FuncOfLit(lit *ast.FuncLit) *Function { return p.byLit[lit] }

// MethodsOf returns the name->Function map of methods declared on the
// named type identified by recvKey ("pkgpath.TypeName"), or nil.
func (p *Program) MethodsOf(key string) map[string]*Function { return p.methods[key] }

// FuncID computes the stable ID of a declared function object; it matches
// the ID of the Function lowered from that declaration even when obj
// comes from a different type-checking of the same package.
func FuncID(obj *types.Func) string {
	obj = obj.Origin()
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if rk := recvKey(sig.Recv().Type()); rk != "" {
			return rk[:strings.LastIndex(rk, ".")] + ".(" + rk[strings.LastIndex(rk, ".")+1:] + ")." + obj.Name()
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// declID computes the ID for a declaration, falling back to position for
// the (untyped) degenerate case.
func declID(u *analysis.Unit, fd *ast.FuncDecl, obj *types.Func) string {
	if obj != nil {
		return FuncID(obj)
	}
	pos := u.Fset.Position(fd.Pos())
	return fmt.Sprintf("%s.%s@%d", u.ImportPath, fd.Name.Name, pos.Line)
}

// recvKey returns "pkgpath.TypeName" for a (possibly pointer) named
// receiver type, or "".
func recvKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// RecvAndParams returns the function's receiver variable (nil if none)
// and parameter variables.
func (fn *Function) RecvAndParams() (recv *types.Var, params []*types.Var) {
	if fn.Sig == nil {
		return nil, nil
	}
	recv = fn.Sig.Recv()
	for i := 0; i < fn.Sig.Params().Len(); i++ {
		params = append(params, fn.Sig.Params().At(i))
	}
	return recv, params
}

// RangeHeader is the synthetic instruction for a range statement's
// header: the operand plus the per-iteration key/value binding, without
// the body (which has its own blocks).
type RangeHeader struct {
	Range *ast.RangeStmt
}

// Pos implements ast.Node.
func (r *RangeHeader) Pos() token.Pos { return r.Range.Pos() }

// End implements ast.Node.
func (r *RangeHeader) End() token.Pos { return r.Range.X.End() }

// Inspect walks node in evaluation order, skipping nested function
// literal bodies (they are separate Functions). RangeHeader instructions
// walk their operand and key/value expressions.
func Inspect(node ast.Node, visit func(ast.Node) bool) {
	if rh, ok := node.(*RangeHeader); ok {
		Inspect(rh.Range.X, visit)
		if rh.Range.Key != nil {
			Inspect(rh.Range.Key, visit)
		}
		if rh.Range.Value != nil {
			Inspect(rh.Range.Value, visit)
		}
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// Calls invokes visit for every call expression in node (in syntactic
// order), without descending into function literal bodies.
func Calls(node ast.Node, visit func(*ast.CallExpr)) {
	Inspect(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}
