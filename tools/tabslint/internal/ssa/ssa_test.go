package ssa_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/ssa"
)

// unit type-checks one import-free source file into an analysis.Unit.
func unit(t *testing.T, src string) *analysis.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &analysis.Unit{ImportPath: "x", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func TestDeferReplayLIFO(t *testing.T) {
	prog := ssa.Build([]*analysis.Unit{unit(t, `package x
func a() {}
func b() {}
func f() {
	defer a()
	defer b()
}
`)})
	fn := prog.FuncByID("x.f")
	if fn == nil {
		t.Fatal("x.f not lowered")
	}
	var replayed []string
	for _, ins := range fn.Exit.Instrs {
		if !ins.Deferred {
			continue
		}
		call := ins.Node.(*ast.CallExpr)
		replayed = append(replayed, call.Fun.(*ast.Ident).Name)
	}
	if len(replayed) != 2 || replayed[0] != "b" || replayed[1] != "a" {
		t.Fatalf("deferred replay order = %v, want [b a] (LIFO)", replayed)
	}
}

func TestFuncLitIsSeparateFunction(t *testing.T) {
	u := unit(t, `package x
func f() func() int {
	n := 0
	g := func() int {
		n++
		return n
	}
	return g
}
`)
	prog := ssa.Build([]*analysis.Unit{u})
	lit := prog.FuncByID("x.f$lit1")
	if lit == nil {
		t.Fatal("function literal not lowered as x.f$lit1")
	}
	if lit.Parent == nil || lit.Parent.ID != "x.f" {
		t.Fatalf("literal parent = %v, want x.f", lit.Parent)
	}
	// The parent's instruction stream must not contain the literal's body:
	// Inspect honours the boundary.
	f := prog.FuncByID("x.f")
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			ssa.Inspect(ins.Node, func(n ast.Node) bool {
				if inc, ok := n.(*ast.IncDecStmt); ok {
					pos := u.Fset.Position(inc.Pos())
					t.Fatalf("parent stream leaked into literal body at %s", pos)
				}
				return true
			})
		}
	}
}

func TestForwardSkipsUnreachable(t *testing.T) {
	prog := ssa.Build([]*analysis.Unit{unit(t, `package x
func f() int {
	return 1
	return 2
}
`)})
	fn := prog.FuncByID("x.f")
	count := 0
	fn.Forward(ssa.Flow{
		Init:     0,
		Transfer: func(in ssa.Fact, _ ssa.Instr) ssa.Fact { return in },
		Merge:    func(a, _ ssa.Fact) ssa.Fact { return a },
		Equal:    func(a, b ssa.Fact) bool { return a == b },
	}, func(_ ssa.Fact, ins ssa.Instr, _ *ssa.Block) {
		if ret, ok := ins.Node.(*ast.ReturnStmt); ok {
			if lit, ok := ret.Results[0].(*ast.BasicLit); ok && lit.Value == "2" {
				t.Fatal("visited unreachable return")
			}
			count++
		}
	})
	if count != 1 {
		t.Fatalf("visited %d returns, want 1", count)
	}
}

func TestBranchesJoinAndLoop(t *testing.T) {
	prog := ssa.Build([]*analysis.Unit{unit(t, `package x
func f(xs []int) int {
	total := 0
	for _, v := range xs {
		if v > 0 {
			total += v
		} else {
			total -= v
		}
	}
	return total
}
`)})
	fn := prog.FuncByID("x.f")
	// The range header must appear as a synthetic instruction.
	foundRange := false
	maxIn := 0
	fl := ssa.Flow{
		Init:     1,
		Transfer: func(in ssa.Fact, _ ssa.Instr) ssa.Fact { return in },
		Merge:    func(a, b ssa.Fact) ssa.Fact { return a.(int) + b.(int) },
		Equal:    func(a, b ssa.Fact) bool { return a.(int) >= 3 && b.(int) >= 3 || a == b },
	}
	fn.Forward(fl, func(in ssa.Fact, ins ssa.Instr, _ *ssa.Block) {
		if _, ok := ins.Node.(*ssa.RangeHeader); ok {
			foundRange = true
		}
		if v := in.(int); v > maxIn {
			maxIn = v
		}
	})
	if !foundRange {
		t.Fatal("no RangeHeader instruction for the range statement")
	}
	// Facts merged at the loop head and the if/else join: some block saw a
	// merged (summed) fact.
	if maxIn < 2 {
		t.Fatalf("no join merged facts (max in-fact %d)", maxIn)
	}
}

func TestMethodIDsAndIndex(t *testing.T) {
	prog := ssa.Build([]*analysis.Unit{unit(t, `package x
type T struct{ n int }
func (t *T) Get() int  { return t.n }
func (t T) Set(v int)  { t.n = v }
`)})
	for _, id := range []string{"x.(T).Get", "x.(T).Set"} {
		if prog.FuncByID(id) == nil {
			t.Errorf("FuncByID(%q) = nil", id)
		}
	}
	ms := prog.MethodsOf("x.T")
	if len(ms) != 2 || ms["Get"] == nil || ms["Set"] == nil {
		t.Fatalf("MethodsOf(x.T) = %v, want Get and Set", ms)
	}
}
