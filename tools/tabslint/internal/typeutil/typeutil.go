// Package typeutil holds the small type-resolution helpers the tabslint
// analyzers share: resolving a call expression to its static callee and
// matching methods by package, receiver, and name.
package typeutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of call, or nil for calls through
// function values, conversions, and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			obj = sel.Obj()
		} else {
			// Qualified identifier (pkg.Func).
			obj = info.Uses[fn.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// RecvOf returns the package path and receiver type name of a method, or
// ("", "") for plain functions. Pointer receivers are dereferenced;
// interface methods report the interface's named type.
func RecvOf(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsMethod reports whether fn is the method pkgPath.typeName.name.
func IsMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	p, t := RecvOf(fn)
	return p == pkgPath && t == typeName
}

// IsFunc reports whether fn is the package-level function pkgPath.name.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// ReturnsError reports whether fn's final result is the error type.
func ReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
