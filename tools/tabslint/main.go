// Command tabslint is the repo's domain-aware static-analysis suite: a
// multichecker over eight analyzers that enforce the WAL/2PC/trace
// invariants this codebase has historically broken one flaky test at a
// time.
//
// Five run per compilation unit:
//
//	spanleak   — every trace span reaches End/EndErr on all paths
//	lockhold   — no unbounded blocking while a mutex is held
//	durcheck   — no dropped errors from durability-critical calls
//	sleepsync  — no sleep-based synchronization
//	poolmisuse — sync.Pool hygiene: no slice-valued Puts, no use after Put
//
// Three are whole-program: they lower every function body in the load to
// a control-flow graph, build a callgraph (interface dispatch resolved by
// class hierarchy analysis), and run interprocedural dataflow:
//
//	lockorder  — cross-package lock-acquisition order: every observed
//	             edge must be declared in LOCK_ORDER.txt, every declared
//	             edge must still be observed, and no cycle may exist
//	cowviol    — copy-on-write discipline around atomic.Pointer: no
//	             mutation of a value reachable from a published snapshot
//	bufown     — pool-buffer ownership: a //tabslint:pool-get buffer
//	             reaches exactly one Put or declared transfer point
//
// Usage:
//
//	go run ./tools/tabslint ./...
//	go run ./tools/tabslint -no-tests -json ./internal/wal
//
// Findings print as file:line:col: [analyzer] message, or as a JSON array
// with -json. Exit status is 0 when clean, 1 when findings exist, 2 on
// load or usage errors. A finding is silenced by a directive on its line
// or the line above:
//
//	//tabslint:ignore sleepsync models disk latency, not synchronization
//
// The directive names one or more analyzers (comma-separated, or "all")
// and must carry a reason. A directive that suppresses nothing is itself
// reported (analyzer "staleignore"), so suppressions cannot outlive the
// bugs they excused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/loader"
	"tabs/tools/tabslint/internal/passes/bufown"
	"tabs/tools/tabslint/internal/passes/cowviol"
	"tabs/tools/tabslint/internal/passes/durcheck"
	"tabs/tools/tabslint/internal/passes/lockhold"
	"tabs/tools/tabslint/internal/passes/lockorder"
	"tabs/tools/tabslint/internal/passes/poolmisuse"
	"tabs/tools/tabslint/internal/passes/sleepsync"
	"tabs/tools/tabslint/internal/passes/spanleak"
)

var unitAnalyzers = []*analysis.Analyzer{
	spanleak.Analyzer,
	lockhold.Analyzer,
	durcheck.Analyzer,
	sleepsync.Analyzer,
	poolmisuse.Analyzer,
}

var globalAnalyzers = []*analysis.GlobalAnalyzer{
	lockorder.Analyzer,
	cowviol.Analyzer,
	bufown.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	noTests := flag.Bool("no-tests", false, "exclude _test.go files from analysis")
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range unitAnalyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		for _, a := range globalAnalyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-10s %s\n", "staleignore", "a //tabslint:ignore directive that suppresses no finding is itself a finding")
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, mod, err := loader.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabslint:", err)
		return 2
	}
	cfg := &loader.Config{ModuleRoot: root, ModulePath: mod, IncludeTests: !*noTests}
	units, err := cfg.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabslint:", err)
		return 2
	}
	if len(units) == 0 {
		return 0
	}

	// Raw findings first; suppression is applied load-wide afterwards so
	// directive staleness is judged against unit and global analyzers
	// together.
	sup := analysis.NewSuppressions()
	var raw []analysis.Diagnostic
	for _, u := range units {
		sup.Collect(u.Fset, u.Files)
		diags, err := analysis.RunRaw(u, unitAnalyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabslint:", err)
			return 2
		}
		raw = append(raw, diags...)
	}
	partial := false
	for _, p := range patterns {
		if p != "./..." {
			partial = true
		}
	}
	global, err := analysis.RunGlobal(units, mod, root, partial, globalAnalyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabslint:", err)
		return 2
	}
	raw = append(raw, global...)

	var fset = units[0].Fset
	kept := sup.Filter(fset, raw)
	kept = append(kept, sup.Stale()...)
	analysis.Sort(fset, kept)

	if *asJSON {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col,omitempty"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := []finding{}
		for _, d := range kept {
			file, line, col := d.Position(fset)
			out = append(out, finding{File: file, Line: line, Col: col, Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "tabslint:", err)
			return 2
		}
	} else {
		for _, d := range kept {
			file, line, col := d.Position(fset)
			if col > 0 {
				fmt.Printf("%s:%d:%d: [%s] %s\n", file, line, col, d.Analyzer, d.Message)
			} else {
				fmt.Printf("%s:%d: [%s] %s\n", file, line, d.Analyzer, d.Message)
			}
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "tabslint: %d finding(s)\n", len(kept))
		return 1
	}
	return 0
}
