// Command tabslint is the repo's domain-aware static-analysis suite: a
// multichecker over five analyzers that enforce the WAL/2PC/trace
// invariants this codebase has historically broken one flaky test at a
// time.
//
//	spanleak   — every trace span reaches End/EndErr on all paths
//	lockhold   — no unbounded blocking while a mutex is held
//	durcheck   — no dropped errors from durability-critical calls
//	sleepsync  — no sleep-based synchronization
//	poolmisuse — sync.Pool hygiene: no slice-valued Puts, no use after Put
//
// Usage:
//
//	go run ./tools/tabslint ./...
//	go run ./tools/tabslint -no-tests ./internal/wal
//
// Findings print as file:line:col: [analyzer] message. Exit status is 0
// when clean, 1 when findings exist, 2 on load or usage errors. A finding
// is silenced by a directive on its line or the line above:
//
//	//tabslint:ignore sleepsync models disk latency, not synchronization
//
// The directive names one or more analyzers (comma-separated, or "all")
// and must carry a reason.
package main

import (
	"flag"
	"fmt"
	"os"

	"tabs/tools/tabslint/internal/analysis"
	"tabs/tools/tabslint/internal/loader"
	"tabs/tools/tabslint/internal/passes/durcheck"
	"tabs/tools/tabslint/internal/passes/lockhold"
	"tabs/tools/tabslint/internal/passes/poolmisuse"
	"tabs/tools/tabslint/internal/passes/sleepsync"
	"tabs/tools/tabslint/internal/passes/spanleak"
)

var analyzers = []*analysis.Analyzer{
	spanleak.Analyzer,
	lockhold.Analyzer,
	durcheck.Analyzer,
	sleepsync.Analyzer,
	poolmisuse.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	noTests := flag.Bool("no-tests", false, "exclude _test.go files from analysis")
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, mod, err := loader.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabslint:", err)
		return 2
	}
	cfg := &loader.Config{ModuleRoot: root, ModulePath: mod, IncludeTests: !*noTests}
	units, err := cfg.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabslint:", err)
		return 2
	}

	findings := 0
	for _, u := range units {
		diags, err := analysis.Run(u, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tabslint:", err)
			return 2
		}
		for _, d := range diags {
			pos := u.Fset.Position(d.Pos)
			fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tabslint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
