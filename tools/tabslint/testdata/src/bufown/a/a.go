// Fixture: pool-buffer ownership. getBuf hands out caller-owned buffers;
// each must reach exactly one putBuf (or the declared transfer point) on
// every path. Both failure modes — double Put and leak — and both clean
// shapes (defer, transfer, interprocedural consume) are covered.
package a

// pool is a stand-in for the real size-classed frame pool.
var pool [][]byte

// getBuf hands out a pool buffer; the caller owns it.
//
//tabslint:pool-get
func getBuf(n int) []byte {
	if len(pool) == 0 {
		return make([]byte, n)
	}
	b := pool[len(pool)-1]
	pool = pool[:len(pool)-1]
	return b[:n]
}

// putBuf returns a buffer to the pool.
//
//tabslint:pool-put
func putBuf(b []byte) {
	pool = append(pool, b)
}

// enqueue takes ownership of the frame for asynchronous writing.
//
//tabslint:pool-transfer
func enqueue(b []byte) {
	pool = append(pool, b)
}

// Clean gets, uses and returns the buffer exactly once, via defer.
func Clean() {
	b := getBuf(64)
	defer putBuf(b)
	b[0] = 1
}

// DoublePut returns the same buffer twice: the second Put corrupts the
// free list for whoever gets the buffer next.
func DoublePut() {
	b := getBuf(64)
	putBuf(b)
	putBuf(b) // want `pool buffer "b" may already have been returned to the pool`
}

// Leak drops the buffer on the early-return path.
func Leak(fail bool) {
	b := getBuf(64) // want `pool buffer "b" does not reach a Put`
	if fail {
		return
	}
	putBuf(b)
}

// Transfer hands the buffer to a declared ownership-transfer point.
func Transfer() {
	b := getBuf(64)
	enqueue(b)
}

// recycle forwards its argument to the pool; callers consume through it.
func recycle(b []byte) {
	putBuf(b)
}

// DoubleViaHelper double-puts through the interprocedural summary: the
// helper's Put counts as the first consumption.
func DoubleViaHelper() {
	b := getBuf(64)
	recycle(b)
	putBuf(b) // want `pool buffer "b" may already have been returned to the pool`
}
