// Fixture: copy-on-write discipline around atomic.Pointer snapshots —
// the nameserver routing-cache shape. Mutating a loaded snapshot, or a
// value already Stored, is a data race with lock-free readers.
package a

import "sync/atomic"

type cache struct {
	m map[string]int
}

type Registry struct {
	snap atomic.Pointer[cache]
}

// Bad mutates the loaded snapshot in place.
func (r *Registry) Bad(k string, v int) {
	c := r.snap.Load()
	c.m[k] = v // want `write into "c\.m" mutates a copy-on-write published value`
}

// BadDelete deletes from a published map.
func (r *Registry) BadDelete(k string) {
	c := r.snap.Load()
	delete(c.m, k) // want `delete on "c\.m" mutates a copy-on-write published value`
}

// Good clones, edits the clone, then stores: the only sanctioned shape.
func (r *Registry) Good(k string, v int) {
	old := r.snap.Load()
	next := &cache{m: make(map[string]int, len(old.m)+1)}
	for key, val := range old.m {
		next.m[key] = val
	}
	next.m[k] = v
	r.snap.Store(next)
}

// BadAfterStore keeps writing into a value it already published.
func (r *Registry) BadAfterStore(k string, v int) {
	next := &cache{m: map[string]int{}}
	r.snap.Store(next)
	next.m[k] = v // want `write into "next\.m" mutates a copy-on-write published value`
}

// scrub mutates its argument map.
func scrub(m map[string]int) {
	delete(m, "tmp")
}

// BadIndirect hands the published map to a mutating helper; the callee's
// summary makes the call site the violation.
func (r *Registry) BadIndirect() {
	c := r.snap.Load()
	scrub(c.m) // want `passing "c\.m" to cowviol/a\.scrub mutates a copy-on-write published value`
}

// GoodBorrow hands the published map to a read-only helper: no finding.
func (r *Registry) GoodBorrow() int {
	c := r.snap.Load()
	return total(c.m)
}

// total only reads its argument.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
