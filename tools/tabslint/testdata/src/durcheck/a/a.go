// Package a is the durcheck fixture: dropped errors from durability-
// critical calls.
package a

import (
	"tabs/internal/disk"
	"tabs/internal/wal"
)

var lg *wal.Log
var d *disk.Disk
var rec = &wal.Record{Type: wal.RecCommit}

// --- violations ------------------------------------------------------------

func bareForce() {
	lg.Force(0) // want `result of wal\.Log\.Force dropped`
}

func blankForce() {
	_ = lg.Force(0) // want `error from wal\.Log\.Force assigned to _`
}

func blankAppend() {
	lsn, _ := lg.Append(rec) // want `error from wal\.Log\.Append assigned to _`
	_ = lsn
}

func goForce() {
	go lg.Force(0) // want `error from wal\.Log\.Force unobservable under go`
}

func deferForce() {
	defer lg.Force(0) // want `error from wal\.Log\.Force unobservable under defer`
}

func bareDiskWrite(addr disk.Addr, p []byte) {
	d.Write(addr, p, 0) // want `result of disk\.Disk\.Write dropped`
}

// --- accepted shapes -------------------------------------------------------

func checkedForce() error {
	if err := lg.Force(0); err != nil {
		return err
	}
	return nil
}

func checkedAppend() (wal.LSN, error) {
	return lg.Append(rec)
}

func usedErr() error {
	_, err := lg.AppendAndForce(rec)
	return err
}

func suppressedForce() {
	//tabslint:ignore durcheck fixture: deliberate drop kept to exercise the suppression directive
	_ = lg.Force(0)
}

func nonCriticalDropIsFine(m map[int]int) {
	delete(m, 1)
}
