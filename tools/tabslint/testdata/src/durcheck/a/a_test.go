package a

// Test files are exempt: tests legitimately ignore durability errors when
// arranging failure scenarios.

func dropInTestFileIsFine() {
	_ = lg.Force(0)
}
