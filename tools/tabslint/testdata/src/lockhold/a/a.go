// Package a is the lockhold fixture: blocking operations inside and
// outside mutex critical sections.
package a

import (
	"sync"
	"time"

	"tabs/internal/disk"
	"tabs/internal/wal"
)

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	lg *wal.Log
	d  *disk.Disk
	ch chan int
}

// --- violations ------------------------------------------------------------

func sendUnderLock(s *state) {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while "s\.mu" \(locked at line \d+, released\) is held`
	s.mu.Unlock()
}

func recvUnderDeferredLock(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while "s\.mu" .*deferred unlock.* is held`
}

func forceUnderLock(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lg.Force(0) // want `call to wal\.Log\.Force while "s\.mu" .* is held`
}

func diskWriteUnderRLock(s *state, addr disk.Addr, p []byte) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.d.Write(addr, p, 0) // want `call to disk\.Disk\.Write while "s\.rw" .* is held`
}

func sleepUnderLock(s *state) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while "s\.mu" .* is held`
	s.mu.Unlock()
}

func waitGroupUnderLock(s *state, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `call to sync\.WaitGroup\.Wait while "s\.mu" .* is held`
}

func selectUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while "s\.mu" .* is held`
	case <-s.ch:
	case s.ch <- 1:
	}
}

func stillHeldAfterBranch(s *state, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return
	}
	s.ch <- 1 // want `channel send while "s\.mu" .* is held`
	s.mu.Unlock()
}

// --- accepted shapes -------------------------------------------------------

func sendAfterUnlock(s *state) {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

func selectWithDefault(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func condWaitIsExempt(s *state, c *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ch) == 0 {
		c.Wait()
	}
}

func goroutineResetsHeldSet(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // runs outside the critical section
	}()
}

func suppressedForce(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//tabslint:ignore lockhold fixture: deliberate force-under-lock kept to exercise the suppression directive
	return s.lg.Force(0)
}

func unlockedForce(s *state) error {
	s.mu.Lock()
	lsn := wal.LSN(0)
	s.mu.Unlock()
	return s.lg.Force(lsn)
}
