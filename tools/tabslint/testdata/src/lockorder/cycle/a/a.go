// Fixture: the classic ABBA two-mutex deadlock. LOCK_ORDER.txt declares
// a.S.a -> a.S.b; ba() acquires in the opposite order, producing an
// undeclared reverse edge and a cycle no declaration can bless.
package a

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

// ab acquires in the declared order.
func (s *S) ab() {
	s.a.Lock()
	s.b.Lock() // want `lock-order cycle: a\.S\.a -> a\.S\.b -> a\.S\.a`
	s.b.Unlock()
	s.a.Unlock()
}

// ba inverts the order: with ab() running concurrently, each goroutine
// can hold one mutex and wait forever for the other.
func (s *S) ba() {
	s.b.Lock()
	s.a.Lock() // want `lock-order edge "a\.S\.b" -> "a\.S\.a" is not declared in LOCK_ORDER\.txt`
	s.a.Unlock()
	s.b.Unlock()
}

var _ = (&S{}).ab
var _ = (&S{}).ba
