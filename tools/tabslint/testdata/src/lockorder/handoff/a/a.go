// Fixture: lock hand-off, the WAL group-commit shape. force() calls
// lead() with mu held; lead() releases the inherited lock before
// re-acquiring it, so there must be no self-edge (and no cycle) — the
// must-released-before component of the summary proves the caller's hold
// never spans the re-acquisition.
package a

import "sync"

type Log struct {
	mu   sync.Mutex
	busy bool
}

// force calls lead with mu held. No finding: lead's re-acquisition
// happens strictly after it releases the inherited mu.
func (l *Log) force() {
	l.mu.Lock()
	if l.busy {
		l.mu.Unlock()
		return
	}
	l.lead()
}

// lead is called with l.mu held; it releases the inherited lock for the
// slow write, then retakes it to publish the result.
func (l *Log) lead() {
	l.busy = true
	l.mu.Unlock()
	// slow write happens unlocked
	l.mu.Lock()
	l.busy = false
	l.mu.Unlock()
}

var _ = (&Log{}).force
