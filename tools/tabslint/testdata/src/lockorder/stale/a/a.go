// Fixture: the code acquires each mutex on its own — never nested — but
// LOCK_ORDER.txt still declares an edge. The declaration is stale and
// must be reported, so the file cannot drift from the code.
package a

import "sync"

type S struct {
	x sync.Mutex
	y sync.Mutex
}

// Disjoint acquires each lock with the other released.
func (s *S) Disjoint() {
	s.x.Lock()
	s.x.Unlock()
	s.y.Lock()
	s.y.Unlock()
}

var _ = (&S{}).Disjoint
