// Fixture: an interprocedural, cross-package nested acquisition with an
// empty hierarchy file — the edge must be reported at the call site, with
// the callee chain named.
package a

import (
	"sync"

	"lockorder/undeclared/b"
)

type Table struct {
	mu    sync.Mutex
	shard b.Shard
}

// Inc nests the shard acquisition under the table lock through a call —
// no single function holds both locks.
func (t *Table) Inc() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shard.Bump() // want `lock-order edge "a\.Table\.mu" -> "b\.Shard\.mu" is not declared in LOCK_ORDER\.txt \(acquired inside lockorder/undeclared/b\.\(Shard\)\.Bump`
}

var _ = (&Table{}).Inc
