// Fixture callee package: Bump acquires the shard lock internally, so a
// caller holding its own lock creates a cross-package edge no single
// function shows.
package b

import "sync"

type Shard struct {
	mu sync.Mutex
	n  int
}

// Bump takes the shard lock.
func (s *Shard) Bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
