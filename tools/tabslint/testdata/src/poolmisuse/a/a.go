// Package a is the poolmisuse fixture: slice-valued Puts and uses of a
// value after it was returned to the pool.
package a

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

var slicePool sync.Pool

func putsBareSlice(b []byte) {
	slicePool.Put(b) // want `Put of a slice value boxes the slice header`
}

func putsSlicePointer(b *[]byte) {
	bufPool.Put(b) // pointer-sized: no boxing allocation
}

func putsAddressOfSlice() {
	b := make([]byte, 0, 256)
	bufPool.Put(&b) // fine: the pointer is what escapes, taken once
}

type frame struct{ b []byte }

var framePool sync.Pool

func putsStruct(f *frame) {
	framePool.Put(f) // fine: pointer to wrapper struct
}

func useAfterPut(f *frame) {
	framePool.Put(f)
	f.b = nil // want `"f" is used after being Put back in the pool`
}

func useAfterPutOfAddress() {
	b := make([]byte, 0, 64)
	bufPool.Put(&b)
	_ = append(b, 1) // want `"b" is used after being Put back in the pool`
}

func reassignAfterPutIsFine(f *frame) {
	framePool.Put(f)
	f = framePool.Get().(*frame) // fresh value: later uses are legitimate
	f.b = f.b[:0]
	_ = f
}

func putLastIsFine(f *frame) {
	f.b = f.b[:0]
	framePool.Put(f)
}
