// Package a is the sleepsync fixture for internal (production) code:
// any bare time.Sleep is flagged.
package a

import "time"

func sleepAsSync() {
	time.Sleep(10 * time.Millisecond) // want `time\.Sleep in internal non-test code`
}

func suppressedSleep() {
	//tabslint:ignore sleepsync fixture: deliberate sleep kept to exercise the suppression directive
	time.Sleep(time.Millisecond)
}
