package a

import (
	"testing"
	"time"
)

var done bool

func TestAssertAfterSleep(t *testing.T) {
	go func() { done = true }()
	time.Sleep(50 * time.Millisecond) // want `test asserts directly after a bare time\.Sleep`
	if !done {
		t.Fatal("not done")
	}
}

func TestDirectAssertAfterSleep(t *testing.T) {
	time.Sleep(time.Millisecond) // want `test asserts directly after a bare time\.Sleep`
	t.Error("boom")
}

func TestSleepThenNonAssertIsFine(t *testing.T) {
	time.Sleep(time.Millisecond)
	t.Log("just pacing; no assertion races this sleep")
}

func TestPollingLoopIsFine(t *testing.T) {
	for i := 0; i < 10; i++ {
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout")
}

func TestSuppressedAssertAfterSleep(t *testing.T) {
	//tabslint:ignore sleepsync fixture: deliberate race kept to exercise the suppression directive
	time.Sleep(time.Millisecond)
	t.Log("suppressed")
}
