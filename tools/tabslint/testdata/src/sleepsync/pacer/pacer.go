// Package pacer sits outside any internal/ tree: production sleeps here
// (cmd-style pacing loops) are not sleepsync's business.
package pacer

import "time"

func pace() {
	time.Sleep(time.Millisecond)
}

var _ = pace
