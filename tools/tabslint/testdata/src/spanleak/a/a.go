// Package a is the spanleak fixture: each function is one span-lifecycle
// shape the analyzer must flag or accept.
package a

import (
	"errors"
	"fmt"

	"tabs/internal/trace"
)

var tr *trace.Tracer
var errBoom = errors.New("boom")

func work() error { return errBoom }

// --- violations ------------------------------------------------------------

// earlyReturnLeak is the canonical bug class: an error branch returns
// before ending the span.
func earlyReturnLeak() error {
	sp := tr.Begin("fix", "early")
	if err := work(); err != nil {
		return err // want `span "sp" .* not ended on this return path`
	}
	sp.End()
	return nil
}

// pr2Shape reconstructs the PR-2 WAL force bug verbatim: a loop doing
// read-modify-write whose read-error path returned without EndErr.
func pr2Shape(start, end uint64, data []byte) error {
	sp := tr.Begin("wal", "force").Annotatef("bytes=%d", int64(end-start))
	for sec := start; sec <= end; sec++ {
		if err := work(); err != nil {
			return fmt.Errorf("wal: read-modify-write of log page: %w", err) // want `span "sp" .* not ended on this return path`
		}
		if err := work(); err != nil {
			err = fmt.Errorf("wal: forcing log page: %w", err)
			sp.EndErr(err)
			return err
		}
	}
	sp.End()
	return nil
}

// fallthroughLeak never ends the span at all.
func fallthroughLeak() {
	sp := tr.Begin("fix", "fall") // want `span "sp" is not ended before the function falls off the end`
	_ = sp.Annotate("x=1")
}

// blankSpan can never be ended.
func blankSpan() {
	_ = tr.Begin("fix", "blank") // want `span begun and assigned to _`
}

// discarded begins a span as a bare statement without a terminal End.
func discarded() {
	tr.Begin("fix", "drop").Annotate("x=1") // want `span begun and immediately discarded`
}

// switchLeak ends the span in one case but not the other.
func switchLeak(n int) error {
	sp := tr.Begin("fix", "switch")
	switch n {
	case 0:
		sp.End()
		return nil
	default:
		return errBoom // want `span "sp" .* not ended on this return path`
	}
}

// --- accepted shapes -------------------------------------------------------

// deferred covers every exit with defer.
func deferred() error {
	sp := tr.Begin("ok", "defer")
	defer sp.End()
	if err := work(); err != nil {
		return err
	}
	return nil
}

// deferredClosure covers every exit with a deferred closure.
func deferredClosure() (err error) {
	sp := tr.Begin("ok", "defer-closure")
	defer func() { sp.EndErr(err) }()
	return work()
}

// balanced ends on every branch by hand, with annotation chains.
func balanced(fast bool) error {
	sp := tr.Begin("ok", "balanced").Annotate("mode=x")
	if fast {
		sp.End()
		return nil
	}
	err := work()
	sp.Annotate("waited=true").EndErr(err)
	return err
}

// retryLoop is the comm.Call shape: a retransmission loop with a select,
// every exit ending the span.
func retryLoop(ch chan int) error {
	sp := tr.Begin("ok", "retry")
	for i := 0; i < 3; i++ {
		if i > 0 {
			sp.Annotatef("retransmit=%d", i)
		}
		select {
		case <-ch:
			sp.End()
			return nil
		default:
		}
	}
	err := errBoom
	sp.EndErr(err)
	return err
}

// chainedImmediate begins and ends in one chained statement.
func chainedImmediate() {
	tr.Begin("ok", "event").Annotate("x=1").End()
}

// escapesByReturn hands the span to the caller.
func escapesByReturn() *trace.ActiveSpan {
	sp := tr.Begin("ok", "escape-return")
	return sp
}

// escapesByCall hands the span to another function.
func escapesByCall() {
	sp := tr.Begin("ok", "escape-call")
	keep(sp)
}

func keep(sp *trace.ActiveSpan) { sp.End() }

// escapesByStore parks the span in a struct.
type holder struct{ sp *trace.ActiveSpan }

func escapesByStore(h *holder) {
	sp := tr.Begin("ok", "escape-store")
	h.sp = sp
}

// suppressed documents a deliberate leak with a directive on the line
// above the offending return.
func suppressed() error {
	sp := tr.Begin("ok", "suppressed")
	sp.Annotate("leaked=true")
	//tabslint:ignore spanleak fixture: deliberate leak kept to exercise the suppression directive
	return nil
}

// endsInBothBranches merges two ended paths before a shared return.
func endsInBothBranches(b bool) error {
	sp := tr.Begin("ok", "both")
	if b {
		sp.End()
	} else {
		sp.EndErr(errBoom)
	}
	return nil
}
